"""The delay transform (§3.2.2).

"Moving conflicting statements into the head of a function ensures
their correct execution order": in the CRI model the only inherent
ordering is that heads execute sequentially, so if both statements of a
conflicting pair run before the spawn, the conflict resolves in
sequential order with no locks at all.

Implementation: within each statement sequence that contains a spawned
self-call, move every conflicting statement that currently follows the
spawn to just before it — together with the statements it depends on
(value producers), preserving control dependencies by only reordering
within one sequence.  Conflicting statements under *different* control
than the spawn are left for the locking transform, with a reason
recorded ("this approach ... will not work for all recursive
functions").

The cost is a bigger head: callers should compare
``analysis.headtail.concurrency`` before and after (§3.2.2's trade-off,
exercised by bench A4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.conflicts import FunctionAnalysis
from repro.ir import nodes as N
from repro.ir.visitors import assigned_variables, copy_function, free_variables


@dataclass
class DelayResult:
    func: N.FuncDef
    moved: int = 0
    not_movable: list[str] = field(default_factory=list)

    @property
    def resolved_all(self) -> bool:
        return not self.not_movable


def delay_into_head(
    analysis: FunctionAnalysis, func: Optional[N.FuncDef] = None
) -> DelayResult:
    """Move conflicting statements before the spawn(s) in ``func``.

    ``func`` defaults to a copy of the analyzed function — which should
    already be spawnified, since delaying is meaningful relative to the
    spawn position.  Statements are matched by source-form identity, so
    the analysis may have been computed on the pre-copy function.
    """
    if func is None:
        func = copy_function(analysis.func)
    result = DelayResult(func=func)

    conflict_sources: set[int] = set()
    for conflict in analysis.active_conflicts():
        for ref in (conflict.earlier, conflict.later):
            if ref.is_heap:
                conflict_sources.add(id(ref.node.source))

    if not conflict_sources:
        return result

    def contains_conflict(node: N.Node) -> bool:
        return any(id(s.source) in conflict_sources for s in node.walk())

    def is_spawn(node: N.Node) -> bool:
        if isinstance(node, N.Spawn) and node.call.is_self_call:
            return True
        if isinstance(node, N.FutureExpr):
            inner = node.expr
            return isinstance(inner, N.Call) and inner.is_self_call
        if isinstance(node, N.Call) and node.is_self_call:
            return True
        return False

    def reorder(body: list[N.Node]) -> list[N.Node]:
        spawn_positions = [i for i, n in enumerate(body) if is_spawn(n)]
        if not spawn_positions:
            return body
        first_spawn = spawn_positions[0]
        out = list(body)
        moved_any = True
        while moved_any:
            moved_any = False
            spawn_positions = [i for i, n in enumerate(out) if is_spawn(n)]
            first_spawn = spawn_positions[0]
            for idx in range(first_spawn + 1, len(out)):
                stmt = out[idx]
                if is_spawn(stmt):
                    continue
                if not contains_conflict(stmt):
                    continue
                # Gather dependency block: statements between the spawn and
                # stmt that produce variables stmt reads.
                needed = free_variables(stmt)
                block = [idx]
                for back in range(idx - 1, first_spawn, -1):
                    producer = out[back]
                    if assigned_variables(producer) & needed or (
                        isinstance(producer, N.Let)
                        and producer.bound_names() & needed
                    ):
                        block.append(back)
                        needed |= free_variables(producer)
                # The moved block must not depend on the spawn itself
                # (spawns produce no value, so only ordering w.r.t. other
                # spawns matters — which reordering before the first spawn
                # preserves).
                block.sort()
                moved = [out[i] for i in block]
                for i in reversed(block):
                    del out[i]
                insert_at = first_spawn
                for stmt_m in moved:
                    out.insert(insert_at, stmt_m)
                    insert_at += 1
                result.moved += len(moved)
                moved_any = True
                break
        return out

    def walk(node: N.Node) -> None:
        if isinstance(node, (N.Progn, N.Let, N.While)):
            node.body = reorder(node.body)
        for child in node.children():
            walk(child)

    func.body = reorder(func.body)
    for top in func.body:
        walk(top)

    # Anything still conflicting and NOT before a spawn in its own
    # sequence is un-movable at this altitude.
    remaining = _conflicts_after_spawn(func, conflict_sources, is_spawn)
    for desc in remaining:
        result.not_movable.append(desc)
    return result


def _conflicts_after_spawn(func, conflict_sources, is_spawn) -> list[str]:
    """Detect conflicting statements that may still execute after a spawn
    (nested under different control)."""
    problems: list[str] = []

    def check_sequence(body: list[N.Node]) -> None:
        seen_spawn = False
        for node in body:
            if is_spawn(node):
                seen_spawn = True
                continue
            if seen_spawn and any(
                id(s.source) in conflict_sources for s in node.walk()
            ):
                problems.append(
                    f"conflicting statement after a spawn remains: {node!r}"
                )

    def walk(node: N.Node) -> None:
        if isinstance(node, (N.Progn, N.Let, N.While)):
            check_sequence(node.body)
        for child in node.children():
            walk(child)

    check_sequence(func.body)
    for top in func.body:
        walk(top)
    return problems
