"""The Curare driver: analyze → (§5 enable) → spawnify → resolve conflicts.

``Curare.transform(name)`` runs the paper's whole flow on one function:

1. **Analyze** (§2, §3.1): recursion structure, head/tail, transfer
   functions, conflicts, declaration-based dismissals.
2. **Enable** (§5): if a self-call is strict, try recursion→iteration;
   if self-calls are stored, optionally switch to destination-passing
   style (``prefer_dps``) instead of paying future overhead.
3. **CRI** (§3.1): spawnify the recursive calls (spawn or enqueue mode),
   hoisting spawns to shrink the head.
4. **Resolve** (§3.2, cheapest first — the paper presents them "in order
   of decreasing cost and generality", Curare applies the *cheapest
   sufficient* one): reordering (declarations already dismissed those
   conflicts; reorderable updates get atomicity locks), then delays
   (``use_delay``), then locks for whatever remains.
5. **Emit**: define the transformed function in the interpreter (under
   ``suffix``) and produce the §6 feedback report.

The result records everything a programmer tuning declarations needs:
inserted locks, dismissed and unresolved conflicts, the analytic
concurrency, and the suggested declarations.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.analysis.conflicts import FunctionAnalysis, analyze_function
from repro.analysis.recursion import CallClassification
from repro.analysis.report import FeedbackReport, explain
from repro.declare.registry import DeclarationRegistry
from repro.ir import nodes as N
from repro.ir.unparse import unparse_function
from repro.lisp.interpreter import Interpreter
from repro.obs.recorder import Recorder
from repro.lisp.runner import SequentialRunner
from repro.sexpr.datum import Symbol, intern
from repro.transform.cri import CRIResult, TransformError, spawnify
from repro.transform.delay import DelayResult, delay_into_head
from repro.transform.dps import DPSError, DPSResult, to_destination_passing
from repro.transform.iteration import IterationError, IterationResult, recursion_to_iteration
from repro.transform.locking import LockingResult, insert_locks
from repro.transform.reorder import ReorderResult, atomicize_reorderable
from repro.transform.search import SearchError, SearchResult, to_parallel_search

#: Pipeline span name → cache-invalidation stage
#: (:data:`repro.scale.fingerprint.STAGES`).  This is the contract the
#: staged result cache keys against: an edit to a pass's code orphans
#: exactly the cache entries of its stage and the stages after it.
#: ``load_program`` is parse-stage work (reader + interpreter +
#: declarations); ``pass:analyze`` produces the conflict distances; all
#: the rewrite passes are transform-stage.  Tests pin this mapping so a
#: new pass must declare its stage here.
PASS_STAGES: dict[str, str] = {
    "load_program": "parse",
    "pass:analyze": "distance",
    "pass:search": "transform",
    "pass:iteration": "transform",
    "pass:dps": "transform",
    "pass:cri": "transform",
    "pass:reorder": "transform",
    "pass:delay": "transform",
    "pass:locking": "transform",
}


@dataclass
class CurareResult:
    original_name: str
    transformed_name: Optional[str]
    transformed: bool
    analysis: FunctionAnalysis
    reason: str = ""
    cri: Optional[CRIResult] = None
    locking: Optional[LockingResult] = None
    delay: Optional[DelayResult] = None
    reorder: Optional[ReorderResult] = None
    iteration: Optional[IterationResult] = None
    dps: Optional[DPSResult] = None
    search: Optional[SearchResult] = None
    feedback: Optional[FeedbackReport] = None
    final_form: Any = None
    extra_forms: list[Any] = field(default_factory=list)
    #: The emitted function IR, kept so :attr:`post_headtail` can be
    #: derived on demand instead of paying a CFG + dominator pass on
    #: every transform whether or not anyone reads the numbers.
    _post_headtail_func: Any = None
    _post_headtail_cache: Any = None
    _post_headtail_done: bool = False

    @property
    def post_headtail(self) -> Any:
        """Head/tail partition of the *emitted* function (after hoisting
        and lock insertion) — the numbers the §3.1 concurrency model
        applies to.  Computed lazily on first access."""
        if not self._post_headtail_done:
            self._post_headtail_done = True
            if self._post_headtail_func is not None:
                try:
                    from repro.analysis.headtail import partition_head_tail

                    self._post_headtail_cache = partition_head_tail(
                        self._post_headtail_func
                    )
                except Exception:  # informational only; never block
                    self._post_headtail_cache = None
        return self._post_headtail_cache

    @property
    def lock_count(self) -> int:
        return self.locking.lock_count if self.locking else 0

    def report(self) -> str:
        lines = [f";; Curare: {self.original_name}"]
        if not self.transformed:
            lines.append(f";;   NOT transformed: {self.reason}")
        else:
            lines.append(f";;   → {self.transformed_name}")
            if self.iteration:
                lines.append(f";;   recursion→iteration ({self.iteration.pattern})")
            if self.dps:
                lines.append(";;   destination-passing style applied")
            if self.search:
                lines.append(
                    ";;   any-result parallel search (first-wins result cell)"
                )
                for note in self.search.notes:
                    lines.append(f";;     {note}")
            if self.cri:
                lines.append(
                    f";;   CRI mode={self.cri.mode}: {self.cri.spawned_sites} "
                    f"spawn(s), {self.cri.future_sites} future(s), "
                    f"{self.cri.hoisted} hoisted"
                )
            if self.delay and self.delay.moved:
                lines.append(f";;   delayed {self.delay.moved} statement(s) into the head")
            if self.reorder and self.reorder.atomicized:
                lines.append(
                    f";;   atomicized {self.reorder.atomicized} reorderable update(s)"
                )
            if self.locking and self.locking.lock_count:
                lines.append(f";;   {self.locking.lock_count} lock(s):")
                all_specs = (
                    self.locking.locks
                    + self.locking.array_locks
                    + self.locking.var_locks
                    + self.locking.whole_array_locks
                    + ([self.locking.serialize_lock]
                       if self.locking.serialize_lock else [])
                )
                for spec in all_specs:
                    lines.append(f";;     {spec.describe()}")
                if self.locking.concurrency_bound is not None:
                    lines.append(
                        f";;   lock-limited concurrency ≤ "
                        f"{self.locking.concurrency_bound}"
                    )
        if self.feedback is not None:
            lines.append(self.feedback.render())
        return "\n".join(lines)


class Curare:
    """A transformer instance bound to one Lisp world."""

    def __init__(
        self,
        interp: Interpreter,
        decls: Optional[DeclarationRegistry] = None,
        assume_sapp: bool = False,
        recorder: Optional["Recorder"] = None,
    ):
        self.interp = interp
        self.decls = decls if decls is not None else DeclarationRegistry()
        self.assume_sapp = assume_sapp
        #: Flight recorder (repro.obs): when set, every transform records
        #: per-pass wall timings and conflict/lock counters.  ``None``
        #: costs nothing.
        self.recorder = recorder
        if recorder is not None:
            # Anchor the perf-cache export: this recorder reports only
            # cache activity accrued while attached to this pipeline.
            from repro.perf.cache import mark_cache_baseline

            mark_cache_baseline(recorder)
        self.runner = SequentialRunner(interp)
        #: transformed name → original name, for sequential fallback:
        #: when the runtime detects that a declaration lied (a race, a
        #: deadlock, a watchdog timeout), the recovery path re-executes
        #: the *original* program, and this map rewrites the entry call.
        self.transformed_map: dict[str, str] = {}

    # -- loading -------------------------------------------------------------

    def load_program(self, text: str) -> None:
        """Evaluate a program, absorbing its declaim forms."""
        from repro.declare.parser import extract_declarations

        def _load() -> None:
            forms = self.interp.load(text)
            decls, rest = extract_declarations(forms)
            self.decls.extend(decls)
            for form in rest:
                self.runner.eval_form(form)

        self._timed("load_program", _load)

    # -- the driver -----------------------------------------------------------

    def analyze(self, name: str, fresh_params: Optional[set[str]] = None) -> FunctionAnalysis:
        return analyze_function(
            self.interp,
            intern(name),
            decls=self.decls,
            assume_sapp=self.assume_sapp,
            fresh_params=fresh_params,
        )

    def transform(
        self,
        name: str,
        suffix: str = "-cc",
        mode: str = "spawn",
        use_delay: bool = False,
        early_release: bool = False,
        prefer_dps: bool = True,
        treat_tail_as_free: bool = True,
        define: bool = True,
        queue_var: str = "*task-queue*",
    ) -> CurareResult:
        rec = self.recorder
        if rec is None:
            return self._transform_impl(
                name, suffix, mode, use_delay, early_release, prefer_dps,
                treat_tail_as_free, define, queue_var,
            )
        with rec.span(f"transform:{name}", "pipeline"):
            result = self._transform_impl(
                name, suffix, mode, use_delay, early_release, prefer_dps,
                treat_tail_as_free, define, queue_var,
            )
        self._record_result(rec, result)
        return result

    def _transform_impl(
        self,
        name: str,
        suffix: str = "-cc",
        mode: str = "spawn",
        use_delay: bool = False,
        early_release: bool = False,
        prefer_dps: bool = True,
        treat_tail_as_free: bool = True,
        define: bool = True,
        queue_var: str = "*task-queue*",
    ) -> CurareResult:
        analysis = self._timed("pass:analyze", self.analyze, name)
        result = CurareResult(
            original_name=name,
            transformed_name=None,
            transformed=False,
            analysis=analysis,
        )
        if not self.decls.may_parallelize(name):
            result.reason = f"(declaim (parallelize {name} nil)) forbids it"
            result.feedback = explain(analysis)
            return result
        if not analysis.recursion.is_recursive:
            result.reason = "not recursive"
            result.feedback = explain(analysis)
            return result

        working = analysis
        fresh_params: set[str] = set()

        # §3.2.3 category 3: an any-result declaration turns a
        # tail-recursive search into a first-wins parallel search.
        if self.decls.is_any_result(name):
            try:
                result.search = self._timed(
                    "pass:search", to_parallel_search, analysis
                )
                worker = result.search.func
                wrapper = result.search.wrapper
                wrapper.name = intern(name + suffix)
                result.final_form = unparse_function(worker)
                result.extra_forms.append(unparse_function(wrapper))
                result.transformed = True
                result.transformed_name = wrapper.name.name
                self.transformed_map[result.transformed_name] = name
                if define:
                    self.runner.eval_form(result.final_form)
                    for form in result.extra_forms:
                        self.runner.eval_form(form)
                result.feedback = explain(analysis)
                return result
            except SearchError as err:
                result.reason = f"any-result search transform failed: {err}"
                # fall through to the ordinary pipeline

        # §5 enabling transforms.
        if analysis.recursion.has_strict_call:
            try:
                result.iteration = self._timed(
                    "pass:iteration", recursion_to_iteration, analysis,
                    self.decls,
                )
                working = self._reanalyze(result.iteration.func)
                if not working.recursion.is_recursive:
                    # Fully iterative now; nothing left to spawn.  Define it
                    # (it is still a faster sequential function) and stop.
                    result.reason = (
                        "converted to iteration; no recursion remains to spawn"
                    )
                    result.transformed = True
                    result.transformed_name = name + suffix
                    self.transformed_map[result.transformed_name] = name
                    result.iteration.func.name = intern(name + suffix)
                    result.final_form = unparse_function(result.iteration.func)
                    if define:
                        self.runner.eval_form(result.final_form)
                    result.feedback = explain(working)
                    return result
            except IterationError as err:
                result.reason = f"strict self-call; iteration failed: {err}"
                result.feedback = explain(analysis)
                return result
        elif prefer_dps and any(
            analysis.recursion.classification(c) is CallClassification.STORED
            for c in analysis.recursion.self_calls
        ):
            try:
                result.dps = self._timed(
                    "pass:dps", to_destination_passing, analysis,
                    defer_element=True,
                )
                dps_func = result.dps.func
                # Define the DPS function source so re-analysis and the
                # final emission see it.
                self.interp.source_forms[dps_func.name] = unparse_function(dps_func)
                fresh_params = {result.dps.dest_param.name}
                working = analyze_function(
                    self.interp,
                    dps_func,
                    decls=self.decls,
                    assume_sapp=self.assume_sapp,
                    fresh_params=fresh_params,
                )
            except DPSError:
                result.dps = None  # fall back to futures

        # Conflicts whose statements sit in the tail execute deepest-first
        # in the original recursion; synchronization enforces invocation
        # order (the paper's §3.1.1 criterion), which can differ.  Warn.
        tail_conflicts = working.tail_conflicts()

        # CRI spawnification.
        try:
            result.cri = self._timed(
                "pass:cri", spawnify,
                working,
                mode=mode,
                treat_tail_as_free=treat_tail_as_free,
                queue_var=queue_var,
            )
        except TransformError as err:
            result.reason = str(err)
            result.feedback = explain(working)
            return result
        func = result.cri.func
        if tail_conflicts:
            result.cri.notes.append(
                f"{len(tail_conflicts)} conflict(s) involve tail statements: "
                "synchronization enforces invocation order (§3.1.1), which "
                "differs from the original unwind order for these accesses"
            )

        # §3.2 conflict resolution, cheapest sufficient first.
        if working.dismissed_conflicts():
            result.reorder = self._timed(
                "pass:reorder", atomicize_reorderable, working, self.decls,
                func,
            )
            func = result.reorder.func
        if use_delay and working.active_conflicts():
            result.delay = self._timed(
                "pass:delay", delay_into_head, working, func
            )
            func = result.delay.func
            if result.delay.resolved_all and result.delay.moved:
                # Delays ordered every conflict through the head; locks
                # are unnecessary for the moved ones.  Re-deriving which
                # conflicts remain needs a fresh analysis of the new
                # shape; conservatively lock only if something could not
                # be moved.
                if not result.delay.not_movable:
                    working = self._strip_conflicts(working)
        if working.active_conflicts() or working.unknowns:
            result.locking = self._timed(
                "pass:locking", insert_locks, working, func,
                early_release=early_release,
            )
            func = result.locking.func

        # Emit.
        new_name = intern(name + suffix)
        func.name = new_name

        def rename_calls(node: N.Node) -> None:
            for sub in node.walk():
                if isinstance(sub, N.Call) and sub.is_self_call:
                    sub.fn = new_name

        for top in func.body:
            rename_calls(top)
        result.final_form = unparse_function(func)
        result.transformed = True
        result.transformed_name = new_name.name
        if result.dps is not None:
            # The DPS wrapper keeps the original interface but calls the
            # concurrent DPS body.
            wrapper = result.dps.wrapper
            wrapper.name = intern(name + suffix)

            def retarget(node: N.Node) -> None:
                for sub in node.walk():
                    if isinstance(sub, N.Call) and sub.fn is result.dps.func.name:
                        sub.fn = new_name

            # func IS the dps function (renamed); point the wrapper at it.
            dps_concurrent_name = intern(result.dps.func.name.name + suffix)
            func.name = dps_concurrent_name

            def rename_dps(node: N.Node) -> None:
                for sub in node.walk():
                    if isinstance(sub, N.Call) and sub.is_self_call:
                        sub.fn = dps_concurrent_name

            for top in func.body:
                rename_dps(top)
            result.final_form = unparse_function(func)
            for top in wrapper.body:
                for sub in top.walk():
                    if isinstance(sub, N.Call) and sub.fn.name == result.dps.func.name.name:
                        sub.fn = dps_concurrent_name
            result.extra_forms.append(unparse_function(wrapper))
            result.transformed_name = wrapper.name.name
        self.transformed_map[result.transformed_name] = name
        if define:
            self.runner.eval_form(result.final_form)
            for form in result.extra_forms:
                self.runner.eval_form(form)
        result.feedback = explain(working)
        result._post_headtail_func = func
        return result

    # -- sequential fallback (trust-but-verify recovery) -----------------------

    def sequential_fallback_call(self, call_text: str) -> str:
        """Rewrite transformed names in ``call_text`` back to originals.

        The recovery path of the robustness runtime re-executes the
        *original* program in a fresh world after a concurrent run is
        aborted (race flagged, deadlock, watchdog); the entry call the
        harness holds references transformed names, so they must be
        mapped back first.
        """
        return rewrite_fallback_call(call_text, self.transformed_map)

    # -- observability -----------------------------------------------------

    def _timed(self, stage: str, fn, *args, **kwargs):
        """Run ``fn``, timing it as a pipeline span when recording."""
        rec = self.recorder
        if rec is None:
            return fn(*args, **kwargs)
        with rec.span(stage, "pipeline"):
            return fn(*args, **kwargs)

    def _record_result(self, rec: Recorder, result: CurareResult) -> None:
        """Counters + one structured event per transform: conflicts
        found/dismissed, locks inserted, spawn sites — the §6 feedback
        numbers, machine-readable."""
        analysis = result.analysis
        found = len(analysis.conflicts)
        dismissed = len(analysis.dismissed_conflicts())
        rec.count("pipeline.functions")
        rec.count("pipeline.conflicts.found", found)
        rec.count("pipeline.conflicts.dismissed", dismissed)
        rec.count("pipeline.locks.inserted", result.lock_count)
        if result.transformed:
            rec.count("pipeline.transformed")
        if result.cri is not None:
            rec.count("pipeline.spawn_sites", result.cri.spawned_sites)
        rec.event(
            "pipeline.result", "pipeline",
            args={
                "function": result.original_name,
                "transformed": result.transformed,
                "transformed_name": result.transformed_name,
                "reason": result.reason,
                "conflicts_found": found,
                "conflicts_dismissed": dismissed,
                "locks_inserted": result.lock_count,
            },
        )
        # Export the analysis-cache effectiveness accrued by this
        # transform (delta since the last publish to this recorder).
        from repro.perf.cache import publish_cache_stats

        publish_cache_stats(rec)

    # -- helpers ---------------------------------------------------------------

    def _reanalyze(self, func: N.FuncDef) -> FunctionAnalysis:
        return analyze_function(
            self.interp, func, decls=self.decls, assume_sapp=self.assume_sapp
        )

    def _strip_conflicts(self, analysis: FunctionAnalysis) -> FunctionAnalysis:
        for conflict in analysis.conflicts:
            if conflict.active:
                conflict.dismissed_by = "delayed into head (§3.2.2)"
        return analysis


def rewrite_fallback_call(call_text: str, mapping: dict[str, str]) -> str:
    """Replace each transformed name with its original, longest first so
    nested suffixes (``f-cc-cc``) never partially match.  Symbol
    boundaries are respected: ``f5-cc`` must not rewrite inside
    ``my-f5-cc-helper``."""
    out = call_text
    for new in sorted(mapping, key=len, reverse=True):
        out = re.sub(
            rf"(?<![\w\-]){re.escape(new)}(?![\w\-])", mapping[new], out
        )
    return out
