"""Recursion → iteration (§5, first transformation).

Two patterns:

1. **Tail recursion elimination** — every self-call in returned
   position becomes a parameter rebind plus loop-continue.  The paper's
   observation: "changing the single return that produces a value into
   an assignment eliminates the return", making the function acceptable
   to Curare (its recursive calls no longer return used values).

2. **Accumulator introduction** (Huet & Lang style) — a linear
   recursion of the shape ``(op e (f rest))`` in return position becomes
   a tail recursion with an accumulator, *provided* ``op`` is declared
   associative (the paper: these transformations "depend on subtle
   properties of a function's operations, such as commutativity and
   associativity, and so require information like that provided by
   Curare's declarative model").  The accumulator folds left-to-right,
   which associativity makes equal to the original right fold whenever
   ``op`` also has the declared identity behaviour of its base case.

Both produce an ordinary ``while`` loop, so the output is directly
executable and — for pattern 2 — further transformable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.conflicts import FunctionAnalysis
from repro.analysis.recursion import CallClassification
from repro.declare.registry import DeclarationRegistry
from repro.ir import nodes as N
from repro.ir.visitors import copy_function, copy_node
from repro.sexpr.datum import DEFAULT_SYMBOLS, Symbol, intern


class IterationError(Exception):
    pass


@dataclass
class IterationResult:
    func: N.FuncDef
    pattern: str  # "tail" | "accumulator"
    notes: list[str] = field(default_factory=list)


def recursion_to_iteration(
    analysis: FunctionAnalysis,
    decls: Optional[DeclarationRegistry] = None,
) -> IterationResult:
    """Convert ``analysis.func`` to a loop, or raise IterationError."""
    recursion = analysis.recursion
    if not recursion.is_recursive:
        raise IterationError(f"{analysis.func.name} is not recursive")
    if recursion.is_tail_recursive:
        return _tail_to_loop(analysis)
    if decls is not None:
        accumulated = _try_accumulator(analysis, decls)
        if accumulated is not None:
            return accumulated
    raise IterationError(
        f"{analysis.func.name} is neither tail-recursive nor an "
        "associative-op linear recursion (declare the operator "
        "associative to enable accumulator introduction)"
    )


# ---------------------------------------------------------------------------
# Pattern 1: tail recursion → while loop
# ---------------------------------------------------------------------------


def _tail_to_loop(analysis: FunctionAnalysis) -> IterationResult:
    func = copy_function(analysis.func)
    params = func.params
    cont = DEFAULT_SYMBOLS.gensym("continue")
    result_var = DEFAULT_SYMBOLS.gensym("result")

    def rebind(call: N.Call) -> N.Node:
        """Simultaneous parameter rebinding through temporaries."""
        if len(call.args) != len(params):
            raise IterationError(
                f"self-call passes {len(call.args)} args, expected {len(params)}"
            )
        temps = [DEFAULT_SYMBOLS.gensym("arg") for _ in params]
        bindings = [(tmp, arg) for tmp, arg in zip(temps, call.args)]
        assigns: list[N.Node] = [
            N.Setf(N.VarPlace(p), N.Var(t)) for p, t in zip(params, temps)
        ]
        assigns.append(N.Setf(N.VarPlace(cont), N.Const(True)))
        return N.Let(bindings, assigns)

    def convert(node: N.Node) -> N.Node:
        """Rewrite returned-position expressions: self-calls rebind, other
        values store into the result variable."""
        if isinstance(node, N.Call) and node.is_self_call:
            return rebind(node)
        if isinstance(node, N.If):
            return N.If(
                node.test,
                convert(node.then),
                convert(node.els) if node.els is not None else
                N.Setf(N.VarPlace(result_var), N.Const(None)),
                source=node.source,
            )
        if isinstance(node, N.Progn):
            if not node.body:
                return N.Setf(N.VarPlace(result_var), N.Const(None))
            return N.Progn(
                node.body[:-1] + [convert(node.body[-1])], source=node.source
            )
        if isinstance(node, N.Let):
            if not node.body:
                return N.Setf(N.VarPlace(result_var), N.Const(None))
            return N.Let(
                node.bindings,
                node.body[:-1] + [convert(node.body[-1])],
                sequential=node.sequential,
                source=node.source,
            )
        if isinstance(node, (N.And, N.Or)):
            # Conservative: no self-calls inside (tail classification
            # would have been strict otherwise); store the value.
            return N.Setf(N.VarPlace(result_var), node)
        return N.Setf(N.VarPlace(result_var), node)

    if not func.body:
        raise IterationError("empty function body")
    converted = [convert(n) if i == len(func.body) - 1 else n
                 for i, n in enumerate(func.body)]
    loop = N.While(
        N.Var(cont),
        [N.Setf(N.VarPlace(cont), N.Const(None))] + converted,
    )
    new_func = N.FuncDef(
        func.name,
        params,
        [
            N.Let(
                [(cont, N.Const(True)), (result_var, N.Const(None))],
                [loop, N.Var(result_var)],
            )
        ],
        source=func.source,
    )
    return IterationResult(new_func, pattern="tail")


# ---------------------------------------------------------------------------
# Pattern 2: (op e (f rest)) → accumulator loop
# ---------------------------------------------------------------------------


def _try_accumulator(
    analysis: FunctionAnalysis, decls: DeclarationRegistry
) -> Optional[IterationResult]:
    """Match ``(if TEST BASE (op E (f REST...)))`` (possibly from cond)."""
    func = analysis.func
    if len(func.body) != 1 or len(analysis.recursion.self_calls) != 1:
        return None
    body = func.body[0]
    match = _match_linear(body, func.name)
    if match is None:
        return None
    test, base, op, element, call = match
    if not decls.is_associative(op.name):
        return None
    # New shape:
    #   (let ((#:acc nil) (#:started nil))
    #     (while (not TEST)
    #       (setq #:acc (if #:started (op #:acc E) E) #:started t)
    #       <params := call args>)
    #     (if #:started (op #:acc BASE) BASE))
    # Left-folding the op is equal to the original right fold by the
    # declared associativity.
    acc = DEFAULT_SYMBOLS.gensym("acc")
    started = DEFAULT_SYMBOLS.gensym("started")
    params = func.params
    temps = [DEFAULT_SYMBOLS.gensym("arg") for _ in params]
    rebind = N.Let(
        [(tmp, copy_node(arg)) for tmp, arg in zip(temps, call.args)],
        [N.Setf(N.VarPlace(p), N.Var(t)) for p, t in zip(params, temps)],
    )
    update = N.Setf(
        N.VarPlace(acc),
        N.If(
            N.Var(started),
            N.Call(op, [N.Var(acc), copy_node(element)]),
            copy_node(element),
        ),
    )
    loop = N.While(
        N.Call(intern("not"), [copy_node(test)]),
        [update, N.Setf(N.VarPlace(started), N.Const(True)), rebind],
    )
    final = N.If(
        N.Var(started),
        N.Call(op, [N.Var(acc), copy_node(base)]),
        copy_node(base),
    )
    new_func = N.FuncDef(
        func.name,
        list(params),
        [N.Let([(acc, N.Const(None)), (started, N.Const(None))], [loop, final])],
        source=func.source,
    )
    return IterationResult(
        new_func,
        pattern="accumulator",
        notes=[f"left-folds {op.name} (declared associative)"],
    )


def _match_linear(
    node: N.Node, fname: Symbol
) -> Optional[tuple[N.Node, N.Node, Symbol, N.Node, N.Call]]:
    """Match If(test, base, Call(op, [e, selfcall])) in either arm."""
    if not isinstance(node, N.If) or node.els is None:
        return None

    def match_op(expr: N.Node) -> Optional[tuple[Symbol, N.Node, N.Call]]:
        if not isinstance(expr, N.Call) or len(expr.args) != 2:
            return None
        left, right = expr.args
        if isinstance(right, N.Call) and right.is_self_call:
            return (expr.fn, left, right)
        return None

    hit = match_op(node.els)
    if hit is not None:
        return (node.test, node.then, hit[0], hit[1], hit[2])
    hit = match_op(node.then)
    if hit is not None:
        negated = N.Call(intern("not"), [node.test])
        return (negated, node.els, hit[0], hit[1], hit[2])
    return None
