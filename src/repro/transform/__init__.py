"""Curare's program transformations (paper §3.2 and §5).

* :mod:`~repro.transform.cri` — turn self-recursive calls into process
  spawns (Figure 7) or task-queue enqueues (Figure 9), hoisting the
  call as early as dependencies allow (§3.1: concurrency improves as
  the head shrinks).
* :mod:`~repro.transform.locking` — insert ``lock-loc!``/``unlock-loc!``
  around unresolved conflicts (§3.2.1), with coalescing, two-phase
  ordering, and read-write locks.
* :mod:`~repro.transform.delay` — move the earlier statement of a
  conflicting pair (plus dependencies) into the head (§3.2.2).
* :mod:`~repro.transform.reorder` — make declared-reorderable variable
  updates atomic and drop their ordering constraints (§3.2.3).
* :mod:`~repro.transform.iteration` — recursion→iteration (§5).
* :mod:`~repro.transform.dps` — destination-passing style (§5,
  Figures 12→13).
* :mod:`~repro.transform.pipeline` — the end-to-end Curare driver.
"""

from repro.transform.cri import CRIResult, spawnify, TransformError
from repro.transform.locking import LockingResult, insert_locks
from repro.transform.delay import DelayResult, delay_into_head
from repro.transform.reorder import ReorderResult, atomicize_reorderable
from repro.transform.iteration import IterationResult, recursion_to_iteration
from repro.transform.dps import DPSResult, to_destination_passing
from repro.transform.pipeline import Curare, CurareResult
from repro.transform.program import ProgramResult, transform_program

__all__ = [
    "CRIResult",
    "Curare",
    "CurareResult",
    "DPSResult",
    "DelayResult",
    "IterationResult",
    "LockingResult",
    "ReorderResult",
    "ProgramResult",
    "TransformError",
    "atomicize_reorderable",
    "delay_into_head",
    "insert_locks",
    "recursion_to_iteration",
    "spawnify",
    "transform_program",
    "to_destination_passing",
]
