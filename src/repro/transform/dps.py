"""Destination-passing style (§5, Figures 12→13).

``remq`` builds its result by ``(cons (car lst) (remq obj (cdr lst)))``
— the self-call's value is stored, never inspected, but the *return*
still serializes invocations.  DPS removes the return: the function
receives a destination cell and stores its result into that cell's
``cdr``:

    (defun remq-d (dest obj lst)
      (cond ((null lst)           (setf (cdr dest) nil))
            ((eq obj (car lst))   (remq-d dest obj (cdr lst)))
            (t (let ((cell (cons (car lst) nil)))
                 (remq-d cell obj (cdr lst))
                 (setf (cdr dest) cell)))))

The transform recognizes return-position expressions of three shapes:

* a self-call                      → pass ``dest`` through,
* ``(cons E <self-call>)``         → allocate the cell, recurse into it,
  attach (the paper's Figure 13 clause order — recurse, then attach),
* anything else (the base case)    → ``(setf (cdr dest) <expr>)``.

Provenance: the produced stores hit *fresh* cells, so although the DPS
function "appears to contain more side-effects", Curare "does not start
with a blank slate" — our analyzer recognizes destination parameters
whose self-call arguments are always freshly allocated
(:mod:`repro.analysis.variables` freshness) and reports the stores
conflict-free.  A wrapper function re-creates the original interface:

    (defun remq (obj lst)
      (let ((head (cons nil nil))) (remq-d head obj lst) (cdr head)))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.conflicts import FunctionAnalysis
from repro.analysis.recursion import CallClassification
from repro.ir import nodes as N
from repro.ir.visitors import copy_node
from repro.sexpr.datum import DEFAULT_SYMBOLS, Symbol, intern


class DPSError(Exception):
    pass


@dataclass
class DPSResult:
    func: N.FuncDef  # the -d function
    wrapper: N.FuncDef  # original-interface wrapper
    dest_param: Symbol = None  # type: ignore[assignment]
    converted_sites: int = 0
    notes: list[str] = field(default_factory=list)


def to_destination_passing(
    analysis: FunctionAnalysis, suffix: str = "-d", defer_element: bool = False
) -> DPSResult:
    """Produce the DPS form of ``analysis.func`` plus a wrapper.

    ``defer_element=True`` applies the head-shrinking refinement: the
    fresh cell is allocated *empty*, the recursion is entered
    immediately, and the element expression fills the car afterwards —
    moving the per-element work into the tail (§3.1: concurrency grows
    as the head shrinks).  Only write-free element expressions are
    deferred; by DPS provenance the recursion writes nothing the element
    expression can read, so the reordering is unobservable.  With the
    default False the output is literally Figure 13's shape.
    """
    func = analysis.func
    recursion = analysis.recursion
    if not recursion.is_recursive:
        raise DPSError(f"{func.name} is not recursive")
    for call in recursion.self_calls:
        cls = recursion.classification(call)
        if cls is CallClassification.FREE:
            raise DPSError(
                f"{func.name} already calls for effect; DPS is for "
                "value-building recursions"
            )
        if cls is CallClassification.STRICT:
            raise DPSError(
                f"{func.name} inspects a self-call result; DPS cannot help"
            )
    if len(func.body) != 1:
        raise DPSError("DPS expects a single-expression body")

    new_name = intern(func.name.name + suffix)
    dest = intern("dest")
    if dest in func.params:
        dest = DEFAULT_SYMBOLS.gensym("dest")
    result = DPSResult(func=None, wrapper=None, dest_param=dest)  # type: ignore[arg-type]

    def convert(node: N.Node) -> N.Node:
        """Rewrite a return-position expression."""
        if isinstance(node, N.If):
            return N.If(
                copy_node(node.test),
                convert(node.then),
                convert(node.els) if node.els is not None else
                _store(dest, N.Const(None)),
                source=node.source,
            )
        if isinstance(node, N.Progn):
            if not node.body:
                return _store(dest, N.Const(None))
            return N.Progn(
                [copy_node(n) for n in node.body[:-1]] + [convert(node.body[-1])],
                source=node.source,
            )
        if isinstance(node, N.Let):
            if not node.body:
                return _store(dest, N.Const(None))
            return N.Let(
                [(name, copy_node(init)) for name, init in node.bindings],
                [copy_node(n) for n in node.body[:-1]] + [convert(node.body[-1])],
                sequential=node.sequential,
                source=node.source,
            )
        if isinstance(node, N.Call) and node.is_self_call:
            # Tail position: thread the same destination through.
            result.converted_sites += 1
            new_call = N.Call(
                new_name, [N.Var(dest)] + [copy_node(a) for a in node.args],
                source=node.source,
            )
            new_call.is_self_call = True
            return new_call
        cons_match = _match_cons_build(node)
        if cons_match is not None:
            element, call = cons_match
            result.converted_sites += 1
            cell = DEFAULT_SYMBOLS.gensym("cell")
            new_call = N.Call(
                new_name,
                [N.Var(cell)] + [copy_node(a) for a in call.args],
                source=call.source,
            )
            new_call.is_self_call = True
            if defer_element and _write_free(element, analysis):
                # Head-shrinking variant: empty cell, recurse, attach,
                # then fill the car in the tail.
                result.notes.append("element computation deferred past the recursion")
                return N.Let(
                    [(cell, N.Call(intern("cons"), [N.Const(None), N.Const(None)]))],
                    [
                        new_call,
                        _store(dest, N.Var(cell)),
                        N.Setf(
                            N.FieldPlace(N.Var(cell), ("car",)),
                            copy_node(element),
                        ),
                    ],
                    source=node.source,
                )
            return N.Let(
                [(cell, N.Call(intern("cons"), [copy_node(element), N.Const(None)]))],
                [
                    new_call,
                    _store(dest, N.Var(cell)),
                ],
                source=node.source,
            )
        # Base case: store the value.
        return _store(dest, copy_node(node))

    new_body = convert(func.body[0])
    # Every self-call must have been converted (threaded or cons-built).
    # A stored call in any other shape — e.g. deep inside (list ... (f x)
    # ... (f y)) — has no single destination slot; reject so the driver
    # falls back to futures (§3.1's general device).
    leftovers = [
        n
        for n in new_body.walk()
        if isinstance(n, N.Call) and n.fn is func.name
    ]
    if leftovers:
        raise DPSError(
            f"{func.name}: {len(leftovers)} self-call(s) are stored in a "
            "shape DPS cannot thread a destination through"
        )
    dps_func = N.FuncDef(
        new_name, [dest] + list(func.params), [new_body], source=func.source
    )
    _remark_self_calls(dps_func)

    # Wrapper with the original interface.  The (sync) join waits for the
    # spawned descendants so callers receive the *completed* structure —
    # without it a consumer could observe the list mid-construction.
    head = DEFAULT_SYMBOLS.gensym("head")
    wrapper = N.FuncDef(
        func.name,
        list(func.params),
        [
            N.Let(
                [(head, N.Call(intern("cons"), [N.Const(None), N.Const(None)]))],
                [
                    N.Call(new_name, [N.Var(head)] + [N.Var(p) for p in func.params]),
                    N.Call(intern("sync"), []),
                    N.FieldAccess(N.Var(head), ("cdr",)),
                ],
            )
        ],
        source=func.source,
    )
    result.func = dps_func
    result.wrapper = wrapper
    result.notes.append(
        f"destination parameter {dest} receives freshly allocated cells; "
        "its stores are conflict-free by provenance"
    )
    return result


def _store(dest: Symbol, value: N.Node) -> N.Node:
    return N.Setf(N.FieldPlace(N.Var(dest), ("cdr",)), value)


def _write_free(node: N.Node, analysis: FunctionAnalysis) -> bool:
    """No stores anywhere in the expression (safe to defer past the
    recursion under DPS provenance).  Calls to user functions count as
    writes unless declared pure."""
    from repro.lisp.values import Builtin

    interp_functions = getattr(analysis, "_interp_functions", None) or {}
    for sub in node.walk():
        if isinstance(sub, N.Setf):
            return False
        if isinstance(sub, N.Call):
            if sub.fn.name in ("rplaca", "rplacd", "puthash"):
                return False
            fn = interp_functions.get(sub.fn)
            if isinstance(fn, Builtin):
                if fn.writes_memory:
                    return False
                continue
            if sub.fn.name not in analysis.pure_functions:
                return False
    return True


def _match_cons_build(node: N.Node) -> Optional[tuple[N.Node, N.Call]]:
    """Match ``(cons E <self-call>)``."""
    if (
        isinstance(node, N.Call)
        and node.fn.name == "cons"
        and len(node.args) == 2
        and isinstance(node.args[1], N.Call)
        and node.args[1].is_self_call
    ):
        return (node.args[0], node.args[1])
    return None


def _remark_self_calls(func: N.FuncDef) -> None:
    index = 0
    for node in func.walk():
        if isinstance(node, N.Call) and node.fn is func.name:
            node.is_self_call = True
            node.callsite_index = index
            index += 1
