"""Lock insertion (§3.2.1).

For every unresolved conflict, each invocation must hold the lock on the
conflict's runtime location before the conflicting access and release it
afterwards.  The §3.2.1 protocol:

* ``Lock(M)`` goes in the **head**, before the spawn — the head of I_i
  runs before any part of I_{i+d}, so FIFO lock grants reproduce the
  sequential access order even when more than two invocations conflict;
* ``Unlock(M)`` runs after the invocation's last use of M and after all
  lock statements (two-phase, deadlock-free);
* nested conflict-location chains coalesce to the shortest word (one
  lock covers ``l.car``, ``l.car.cdr``, ...);
* a location only read by this invocation takes the read side of a
  read-write lock.

A location word like ``cdr.car`` is locked at runtime by evaluating the
base path and naming the final field: ``(lock-loc! (cdr l) 'car)``,
guarded by a cons check so base-case invocations (nil arguments) skip
locks on structure they don't have.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.conflicts import Conflict, FunctionAnalysis, MemoryRef
from repro.ir import nodes as N
from repro.paths.accessor import Accessor
from repro.sexpr.datum import DEFAULT_SYMBOLS, Symbol, intern


@dataclass
class LockSpec:
    """One lock to insert: parameter, accessor word, and mode."""

    param: Symbol
    word: Accessor
    write: bool
    covers: list[Accessor] = field(default_factory=list)

    def describe(self) -> str:
        mode = "write" if self.write else "read"
        extra = f" (covers {len(self.covers)} nested)" if self.covers else ""
        return f"{mode}-lock {self.param}.{self.word}{extra}"


@dataclass
class ArrayLockSpec:
    """One array element lock: param[index_var + offset], mode."""

    array: Symbol
    index_var: Symbol
    offset: int
    write: bool

    def describe(self) -> str:
        mode = "write" if self.write else "read"
        off = f"+{self.offset}" if self.offset > 0 else (
            str(self.offset) if self.offset else ""
        )
        return f"{mode}-lock {self.array}[{self.index_var}{off}]"


@dataclass
class WholeArrayLockSpec:
    """A whole-array lock for arrays with unanalyzable element indices
    (A[A[i]] — paper §2's footnote 1): element-grained locking cannot
    name the location, so the whole object is serialized."""

    array: Symbol

    def describe(self) -> str:
        return f"whole-array lock {self.array} (unanalyzable subscripts)"


@dataclass
class SerializeLockSpec:
    """The universal fallback: a per-function token lock held for the
    entire invocation, serializing the recursion when some conflict
    cannot be named by any finer lock.  §6's guarantee made literal:
    never incorrect, only slow."""

    function: Symbol

    def describe(self) -> str:
        return f"serialization lock (invocations of {self.function} run one at a time)"


@dataclass
class VarLockSpec:
    """A free-variable lock: acquired in the head, released at the end,
    ordering every invocation's accesses to the shared binding in
    invocation order (locking "is always able to order accesses",
    §3.2.1).  Used when no reorderable declaration dismisses the
    conflict."""

    name: Symbol
    write: bool

    def describe(self) -> str:
        mode = "write" if self.write else "read"
        return f"{mode}-lock variable {self.name}"


@dataclass
class LockingResult:
    func: N.FuncDef
    locks: list[LockSpec] = field(default_factory=list)
    array_locks: list[ArrayLockSpec] = field(default_factory=list)
    var_locks: list[VarLockSpec] = field(default_factory=list)
    whole_array_locks: list[WholeArrayLockSpec] = field(default_factory=list)
    serialize_lock: Optional[SerializeLockSpec] = None
    unresolved: list[str] = field(default_factory=list)
    concurrency_bound: Optional[int] = None
    #: Early (last-use) releases inserted when early_release was requested.
    early_releases: int = 0

    @property
    def lock_count(self) -> int:
        return (
            len(self.locks) + len(self.array_locks) + len(self.var_locks)
            + len(self.whole_array_locks) + (1 if self.serialize_lock else 0)
        )


def plan_locks(analysis: FunctionAnalysis) -> tuple[list[LockSpec], list[str]]:
    """Decide the lock set from the active conflicts."""
    unresolved: list[str] = []
    # Gather (param, word) → needs-write?
    needs: dict[tuple[Symbol, Accessor], bool] = {}

    def note(ref: MemoryRef) -> bool:
        if not ref.is_heap or ref.accessor is None or ref.unbounded:
            return False
        key = (ref.param, ref.accessor)
        needs[key] = needs.get(key, False) or ref.is_write
        return True

    array_needs: dict[tuple[Symbol, Symbol, int], bool] = {}
    whole_array_needs: set[Symbol] = set()
    var_needs: dict[Symbol, bool] = {}
    for conflict in analysis.active_conflicts():
        ok = True
        for ref in (conflict.earlier, conflict.later):
            if ref.is_array:
                if ref.unknown_index or ref.index_var is None:
                    # The element cannot be named: lock the whole array.
                    whole_array_needs.add(ref.param)
                    continue
                key = (ref.param, ref.index_var, ref.index_offset)
                array_needs[key] = array_needs.get(key, False) or ref.is_write
            elif ref.is_heap:
                ok = note(ref) and ok
            elif ref.var is not None:
                # A reorderable declaration would have dismissed this
                # conflict; undismissed variable conflicts get a
                # variable lock held across the invocation.
                var_needs[ref.var] = var_needs.get(ref.var, False) or ref.is_write
        if not ok:
            unresolved.append(conflict.describe())

    # Coalesce nested words per parameter: keep the shortest prefixes.
    by_param: dict[Symbol, list[tuple[Accessor, bool]]] = {}
    for (param, word), write in needs.items():
        by_param.setdefault(param, []).append((word, write))
    specs: list[LockSpec] = []
    for param, words in by_param.items():
        words.sort(key=lambda pair: len(pair[0]))
        kept: list[LockSpec] = []
        for word, write in words:
            holder = None
            for spec in kept:
                if spec.word.is_prefix_of(word):
                    holder = spec
                    break
            if holder is not None:
                holder.covers.append(word)
                holder.write = holder.write or write
            else:
                kept.append(LockSpec(param, word, write))
        specs.extend(kept)
    # Deterministic emission order: per-param, then shortest word first —
    # the outermost-first order that makes the two-phase protocol acyclic
    # along accessor chains.
    specs.sort(key=lambda s: (s.param.name, len(s.word), str(s.word)))

    # Array element locks, ordered by offset: each invocation acquires
    # lower-indexed elements first, giving a globally consistent element
    # order (positive-step inductions climb the array).
    array_specs = [
        ArrayLockSpec(array, ivar, offset, write)
        for (array, ivar, offset), write in array_needs.items()
    ]
    array_specs.sort(key=lambda s: (s.array.name, s.offset))
    # Arrays with unanalyzable subscripts take the whole-array lock;
    # their element locks would use different keys (no mutual exclusion
    # with the cell lock), so they are subsumed.
    if whole_array_needs:
        array_specs = [a for a in array_specs if a.array not in whole_array_needs]
    whole_specs = [WholeArrayLockSpec(a) for a in sorted(whole_array_needs, key=lambda s: s.name)]
    var_specs = [VarLockSpec(name, write) for name, write in var_needs.items()]
    var_specs.sort(key=lambda s: s.name.name)
    return specs, array_specs, var_specs, whole_specs, unresolved


def _path_expr(param: Symbol, word: Accessor) -> tuple[N.Node, str]:
    """(base-expression, final-field) for ``param.word``."""
    assert len(word) >= 1
    base: N.Node = N.Var(param)
    if len(word) > 1:
        base = N.FieldAccess(base, word.fields[:-1])
    return base, word.fields[-1]


def _index_expr(spec: ArrayLockSpec) -> N.Node:
    if spec.offset == 0:
        return N.Var(spec.index_var)
    if spec.offset > 0:
        return N.Call(intern("+"), [N.Var(spec.index_var), N.Const(spec.offset)])
    return N.Call(intern("-"), [N.Var(spec.index_var), N.Const(-spec.offset)])


def _array_lock_stmt(spec: ArrayLockSpec, idx_var: Symbol, lock: bool) -> N.Node:
    """Guarded element lock: skip when the index is out of bounds (the
    boundary invocations reference elements that don't exist)."""
    if spec.write:
        op = "lock-aref!" if lock else "unlock-aref!"
    else:
        op = "read-lock-aref!" if lock else "read-unlock-aref!"
    call = N.Call(intern(op), [N.Var(spec.array), N.Var(idx_var)])
    guard = N.And(
        [
            N.Call(intern(">="), [N.Var(idx_var), N.Const(0)]),
            N.Call(
                intern("<"),
                [N.Var(idx_var), N.Call(intern("array-length"), [N.Var(spec.array)])],
            ),
        ]
    )
    return N.If(guard, call, None)


def _whole_array_lock_stmt(spec: WholeArrayLockSpec, lock: bool) -> N.Node:
    op = "lock-cell!" if lock else "unlock-cell!"
    call = N.Call(intern(op), [N.Var(spec.array)])
    return N.If(N.Call(intern("arrayp"), [N.Var(spec.array)]), call, None)


def _serialize_token(function: Symbol) -> Symbol:
    return intern(f"%serialize-{function.name}%")


def _serialize_lock_stmt(spec: SerializeLockSpec, lock: bool) -> N.Node:
    op = "lock-var!" if lock else "unlock-var!"
    return N.Call(intern(op), [N.Quote(_serialize_token(spec.function))])


def _var_lock_stmt(spec: VarLockSpec, lock: bool) -> N.Node:
    op = "lock-var!" if lock else "unlock-var!"
    return N.Call(intern(op), [N.Quote(spec.name)])


def _lock_stmt(spec: LockSpec, base_var: Symbol, lock: bool) -> N.Node:
    """Guarded lock/unlock through the pre-bound base variable."""
    fld = spec.word.fields[-1]
    if spec.write:
        op = "lock-loc!" if lock else "unlock-loc!"
    else:
        op = "read-lock-loc!" if lock else "read-unlock-loc!"
    call = N.Call(intern(op), [N.Var(base_var), N.Quote(intern(fld))])
    # Guard: the base must be a heap object (base cases pass nil).
    return N.If(N.Call(intern("heap-object-p"), [N.Var(base_var)]), call, None)


def _early_unlock_stmt(spec: LockSpec, base_var: Symbol) -> N.Node:
    """If-held release right after the last use (§3.2.1 early release)."""
    fld = spec.word.fields[-1]
    op = "unlock-loc-if-held!" if spec.write else "read-unlock-loc-if-held!"
    call = N.Call(intern(op), [N.Var(base_var), N.Quote(intern(fld))])
    return N.If(N.Call(intern("heap-object-p"), [N.Var(base_var)]), call, None)


def _insert_early_releases(
    func: N.FuncDef,
    analysis: FunctionAnalysis,
    specs: list[LockSpec],
    base_vars: list[Symbol],
) -> int:
    """Insert if-held unlocks after the last use of each locked word in
    every statement sequence.  The end-of-body releases remain (as
    if-held) for paths with no use.  Returns the insertions made."""
    # Map each spec to the source ids of the refs it covers.
    spec_sources: list[set[int]] = []
    for spec in specs:
        words = {spec.word} | set(spec.covers)
        sources = {
            id(ref.node.source)
            for ref in analysis.heap_refs
            if ref.accessor is not None and ref.param is spec.param
            and any(w == ref.accessor or w.is_prefix_of(ref.accessor)
                    for w in words)
        }
        spec_sources.append(sources)

    inserted = 0

    def contains_use(node: N.Node, sources: set[int]) -> bool:
        return any(id(sub.source) in sources for sub in node.walk())

    def process_sequence(body: list[N.Node]) -> list[N.Node]:
        nonlocal inserted
        out = list(body)
        for spec, base_var, sources in zip(specs, base_vars, spec_sources):
            last = None
            for idx, stmt in enumerate(out):
                if contains_use(stmt, sources):
                    last = idx
            if last is None:
                continue
            stmt = out[last]
            # Only release after a statement that cannot branch around
            # the use (If subtrees may use the word in one arm only —
            # then releasing after the If is still correct: the arm that
            # ran either used it or not, and if-held handles both).
            out.insert(last + 1, _early_unlock_stmt(spec, base_var))
            inserted += 1
        return out

    def walk(node: N.Node) -> None:
        # While bodies re-execute: releasing inside the loop would drop
        # the lock before later iterations' uses.  Lambda bodies run
        # elsewhere.  Both are skipped; a use inside them is covered by
        # the release inserted after the While/Lambda statement itself.
        if isinstance(node, (N.Progn, N.Let)):
            node.body = process_sequence(node.body)
        if isinstance(node, (N.While, N.Lambda)):
            return
        for child in node.children():
            walk(child)

    func.body = process_sequence(func.body)
    for top in func.body:
        walk(top)
    return inserted


def insert_locks(
    analysis: FunctionAnalysis,
    func: Optional[N.FuncDef] = None,
    early_release: bool = False,
) -> LockingResult:
    """Wrap ``func`` (default: a copy of the analyzed function) with the
    planned locks.

    Shape::

        (defun f (args)
          (let* ((#:lb0 <base path 0>) ...)              ; bind bases once
            (if (heap-object-p #:lb0) (lock-loc! #:lb0 'f0))   ; lock phase
            ...
            (let ((#:result (progn <original body>)))
              (if (heap-object-p #:lb0) (unlock-loc! #:lb0 'f0)) ; release
              ...
              #:result)))

    Base paths are evaluated *once*, in the head, so a body that mutates
    an intermediate link cannot desynchronize lock and unlock.
    """
    from repro.ir.visitors import copy_function

    if func is None:
        func = copy_function(analysis.func)
    specs, array_specs, var_specs, whole_specs, unresolved = plan_locks(analysis)
    result = LockingResult(
        func=func, locks=specs, array_locks=array_specs,
        var_locks=var_specs, whole_array_locks=whole_specs,
        unresolved=unresolved,
    )
    # Anything still unresolved (unbounded refs, unknown callees, ...)
    # falls back to full serialization — §6: never incorrect, only slow.
    if unresolved or analysis.unknowns:
        result.serialize_lock = SerializeLockSpec(analysis.func.name)
    distances = [
        c.distance for c in analysis.active_conflicts() if c.distance is not None
    ]
    result.concurrency_bound = min(distances) if distances else None
    if (not specs and not array_specs and not var_specs
            and not whole_specs and result.serialize_lock is None):
        return result

    bindings: list[tuple[Symbol, N.Node]] = []
    base_vars: list[Symbol] = []
    for spec in specs:
        base, _fld = _path_expr(spec.param, spec.word)
        var = DEFAULT_SYMBOLS.gensym("lockbase")
        bindings.append((var, base))
        base_vars.append(var)
    idx_vars: list[Symbol] = []
    for aspec in array_specs:
        var = DEFAULT_SYMBOLS.gensym("lockidx")
        bindings.append((var, _index_expr(aspec)))
        idx_vars.append(var)

    if early_release and specs:
        result.early_releases = _insert_early_releases(
            func, analysis, specs, base_vars
        )

    lock_stmts = [
        _lock_stmt(s, v, lock=True) for s, v in zip(specs, base_vars)
    ] + [
        _array_lock_stmt(s, v, lock=True) for s, v in zip(array_specs, idx_vars)
    ] + [
        _whole_array_lock_stmt(s, lock=True) for s in whole_specs
    ] + [
        _var_lock_stmt(s, lock=True) for s in var_specs
    ] + (
        [_serialize_lock_stmt(result.serialize_lock, lock=True)]
        if result.serialize_lock else []
    )
    var_unlocks = (
        [_serialize_lock_stmt(result.serialize_lock, lock=False)]
        if result.serialize_lock else []
    ) + [_var_lock_stmt(s, lock=False) for s in reversed(var_specs)] + [
        _whole_array_lock_stmt(s, lock=False) for s in reversed(whole_specs)
    ]
    if early_release:
        # Safety-net releases for paths that never used the location.
        unlock_stmts = var_unlocks + [
            _early_unlock_stmt(s, v)
            for s, v in reversed(list(zip(specs, base_vars)))
        ] + [
            _array_lock_stmt(s, v, lock=False)
            for s, v in reversed(list(zip(array_specs, idx_vars)))
        ]
    else:
        unlock_stmts = var_unlocks + [
            _array_lock_stmt(s, v, lock=False)
            for s, v in reversed(list(zip(array_specs, idx_vars)))
        ] + [
            _lock_stmt(s, v, lock=False)
            for s, v in reversed(list(zip(specs, base_vars)))
        ]
    result_var = DEFAULT_SYMBOLS.gensym("lockresult")
    body_value = (
        func.body[0] if len(func.body) == 1 else N.Progn(list(func.body))
    )
    func.body = [
        N.Let(
            bindings,
            lock_stmts
            + [
                N.Let(
                    [(result_var, body_value)],
                    unlock_stmts + [N.Var(result_var)],
                )
            ],
            sequential=True,
        )
    ]
    return result
