"""The CRI transform: recursive calls become asynchronous invocations.

Figure 7's shape: "a recursive call [is] the creation of a new process
to execute the subsequent invocation asynchronously."  Three call
treatments, by classification (§3.1):

* **free** calls (result unused)     → ``(spawn (f args...))``
* **tail** calls (result returned)   → also spawned, when the caller is
  known (or asserted) to call f for effect; the function's value
  becomes nil, which is recorded in the result so the §6 feedback shows
  it.
* **stored** calls (result stored,
  never inspected)                   → ``(future (f args...))`` — the
  Multilisp device (§3.1).

Strict calls are rejected here; the §5 transforms (iteration, DPS) may
remove them first.

After spawnification the spawn is *hoisted*: moved to the earliest
position in its statement sequence such that (a) the argument
computation still sees the same values and (b) no statement it passes
is involved in an active conflict or assigns a variable the arguments
read.  Hoisting shrinks |H| — "the only way to increase the concurrency
is to decrease the amount of code executed before a self-recursive
call" (§3.1).

Enqueue mode emits the Figure 9 server-pool shape instead: recursive
calls become ``(enqueue! *task-queue* (list args...))`` (one queue per
call site when there are several) and every terminating invocation
closes the queue(s) — the paper's kill tokens.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.conflicts import FunctionAnalysis
from repro.analysis.recursion import CallClassification
from repro.ir import nodes as N
from repro.ir.visitors import copy_function, free_variables, rewrite
from repro.sexpr.datum import Symbol, intern


class TransformError(Exception):
    pass


@dataclass
class CRIResult:
    func: N.FuncDef
    mode: str
    spawned_sites: int = 0
    future_sites: int = 0
    hoisted: int = 0
    #: Enqueue mode: how many task queues the emitted code expects —
    #: 1 for a single call site, one per site otherwise (§4.1's ordered
    #: queues).  Pass this to run_server_pool(queues=...).
    queue_count: int = 0
    notes: list[str] = field(default_factory=list)


def spawnify(
    analysis: FunctionAnalysis,
    mode: str = "spawn",
    treat_tail_as_free: bool = True,
    hoist: bool = True,
    queue_var: str = "*task-queue*",
) -> CRIResult:
    """Produce the CRI form of ``analysis.func`` (a fresh FuncDef)."""
    if mode not in ("spawn", "enqueue"):
        raise TransformError(f"unknown CRI mode {mode!r}")
    recursion = analysis.recursion
    if not recursion.is_recursive:
        raise TransformError(f"{analysis.func.name} is not recursive")
    if recursion.has_strict_call:
        raise TransformError(
            f"{analysis.func.name} inspects a self-call result; apply a §5 "
            "transform (iteration or destination-passing) first"
        )
    func = copy_function(analysis.func)
    # Re-run marking on the copy (copy_function preserved flags, but be safe).
    result = CRIResult(func=func, mode=mode)

    classifications = {
        call.callsite_index: analysis.recursion.classification(call)
        for call in analysis.recursion.self_calls
    }
    multi_site = len(classifications) > 1
    # A function with any STORED site builds a value its callers consume;
    # its TAIL sites must return that value too, so they become futures
    # (Multilisp transparency resolves them on read).  Only when *every*
    # site is TAIL may the value be discarded (call-for-effect).
    value_producing = any(
        c is CallClassification.STORED for c in classifications.values()
    )

    def transform_call(node: N.Node) -> Optional[N.Node]:
        if not (isinstance(node, N.Call) and node.is_self_call):
            return None
        cls = classifications.get(node.callsite_index, CallClassification.FREE)
        if cls is CallClassification.TAIL and value_producing:
            cls = CallClassification.STORED
        if cls is CallClassification.TAIL and not treat_tail_as_free:
            raise TransformError(
                "tail call's value would be discarded; pass "
                "treat_tail_as_free=True to accept a nil-valued function"
            )
        if cls is CallClassification.STORED:
            result.future_sites += 1
            return N.FutureExpr(node, source=node.source)
        if cls is CallClassification.TAIL:
            result.notes.append(
                f"call site {node.callsite_index}: tail value discarded — "
                f"{func.name} now returns nil on recursive paths"
            )
        result.spawned_sites += 1
        if mode == "enqueue":
            qname = (
                intern(queue_var)
                if not multi_site
                else intern(f"{queue_var}-{node.callsite_index}")
            )
            return N.Call(
                intern("enqueue!"),
                [N.Var(qname), N.Call(intern("list"), node.args, source=node.source)],
                source=node.source,
            )
        return N.Spawn(node, source=node.source)

    func.body = [rewrite(n, transform_call) for n in func.body]

    if mode == "enqueue":
        result.queue_count = len(classifications) if multi_site else 1
        _add_termination(func, queue_var, multi_site, len(classifications))

    if hoist and mode == "spawn":
        result.hoisted = _hoist_spawns(func, analysis)

    return result


# ---------------------------------------------------------------------------
# Spawn hoisting
# ---------------------------------------------------------------------------


def _conflicting_node_ids(analysis: FunctionAnalysis) -> set[int]:
    """Node ids (of the *original* function) involved in active conflicts.

    copy_function preserves structure but renumbers nodes, so we match by
    source form identity instead: collect the source objects.
    """
    out: set[int] = set()
    for c in analysis.active_conflicts():
        for ref in (c.earlier, c.later):
            out.add(id(ref.node.source))
    return out


def _statement_writes(node: N.Node) -> set[Symbol]:
    writes: set[Symbol] = set()
    for sub in node.walk():
        if isinstance(sub, N.Setf) and isinstance(sub.place, N.VarPlace):
            writes.add(sub.place.name)
    return writes


def _has_heap_write(node: N.Node) -> bool:
    for sub in node.walk():
        if isinstance(sub, N.Setf) and isinstance(sub.place, N.FieldPlace):
            return True
        if isinstance(sub, N.Call) and sub.fn.name in ("rplaca", "rplacd", "puthash"):
            return True
    return False


#: Builtins with no effects a hoisted spawn could observe or disturb.
_HOISTABLE_BUILTIN_EXTRAS = frozenset({"print"})


def _has_opaque_call(node: N.Node, analysis: FunctionAnalysis) -> bool:
    """True when ``node`` calls something the analyzer cannot see through
    (a user function not known pure) — hoisting a spawn past it would
    reorder unknown side effects."""
    from repro.lisp.values import Builtin

    interp_functions = getattr(analysis, "_interp_functions", None)
    for sub in node.walk():
        if not isinstance(sub, N.Call) or sub.is_self_call:
            continue
        name = sub.fn.name
        if name in _HOISTABLE_BUILTIN_EXTRAS:
            continue
        fn = interp_functions.get(sub.fn) if interp_functions else None
        if isinstance(fn, Builtin):
            if fn.writes_memory:
                return True
            continue
        if name in analysis.pure_functions:
            continue
        return True
    return False


def _hoist_spawns(func: N.FuncDef, analysis: FunctionAnalysis) -> int:
    """Move Spawn statements leftward within their Progn sequences."""
    conflict_sources = _conflicting_node_ids(analysis)
    hoists = 0

    def hoist_in_sequence(body: list[N.Node]) -> list[N.Node]:
        nonlocal hoists
        out = list(body)
        for idx in range(len(out)):
            node = out[idx]
            if not isinstance(node, N.Spawn):
                continue
            args_free = set()
            for arg in node.call.args:
                args_free |= free_variables(arg)
            target = idx
            while target > 0:
                prev = out[target - 1]
                if isinstance(prev, (N.Spawn, N.FutureExpr)):
                    break  # keep spawn order (queue/temporal ordering)
                if _statement_writes(prev) & args_free:
                    break
                if _has_heap_write(prev):
                    break  # a heap write moved into the tail needs delay/lock
                if _has_opaque_call(prev, analysis):
                    break  # unknown side effects must not reorder
                if id(prev.source) in conflict_sources or any(
                    id(s.source) in conflict_sources for s in prev.walk()
                ):
                    break
                target -= 1
            if target != idx:
                out.insert(target, out.pop(idx))
                hoists += 1
        return out

    def walk(node: N.Node) -> None:
        if isinstance(node, N.Progn):
            node.body = hoist_in_sequence(node.body)
        elif isinstance(node, N.Let):
            node.body = hoist_in_sequence(node.body)
        elif isinstance(node, N.While):
            node.body = hoist_in_sequence(node.body)
        for child in node.children():
            walk(child)

    for top in func.body:
        walk(top)
    func.body = _hoist_top(func, analysis, func.body)
    return hoists


def _hoist_top(func: N.FuncDef, analysis: FunctionAnalysis, body: list[N.Node]) -> list[N.Node]:
    # The top-level body is also a sequence.
    conflict_sources = _conflicting_node_ids(analysis)
    out = list(body)
    for idx in range(len(out)):
        node = out[idx]
        if not isinstance(node, N.Spawn):
            continue
        args_free = set()
        for arg in node.call.args:
            args_free |= free_variables(arg)
        target = idx
        while target > 0:
            prev = out[target - 1]
            if isinstance(prev, (N.Spawn, N.FutureExpr)):
                break
            if _statement_writes(prev) & args_free:
                break
            if _has_heap_write(prev):
                break
            if _has_opaque_call(prev, analysis):
                break
            if any(id(s.source) in conflict_sources for s in prev.walk()):
                break
            target -= 1
        if target != idx:
            out.insert(target, out.pop(idx))
    return out


# ---------------------------------------------------------------------------
# Enqueue-mode termination (kill tokens)
# ---------------------------------------------------------------------------


def _add_termination(
    func: N.FuncDef, queue_var: str, multi_site: bool, sites: int
) -> None:
    """Wrap the body so a non-recursing invocation closes the queue.

    ``(let ((#:recursed nil)) <body with enqueues setting the flag>
       (unless #:recursed (close-queue! q)))``

    This is the paper's kill token, valid for a *single* call site:
    linear recursion has exactly one terminating invocation and it is
    enqueued last, so everything before it has already entered the FIFO
    queue.  With multiple call sites (tree recursion) a leaf terminates
    while work is still outstanding, so no close is emitted — the server
    pool instead uses the machine's quiescence detection (all servers
    blocked on empty task queues ⇒ recursion done), our rendering of the
    paper's "more elaborate arrangement".
    """
    if multi_site:
        return
    from repro.sexpr.datum import DEFAULT_SYMBOLS

    flag = DEFAULT_SYMBOLS.gensym("recursed")

    def mark_enqueues(node: N.Node) -> Optional[N.Node]:
        if (
            isinstance(node, N.Call)
            and node.fn.name == "enqueue!"
        ):
            return N.Progn(
                [
                    N.Setf(N.VarPlace(flag), N.Const(True)),
                    node,
                ]
            )
        return None

    new_body = [rewrite(n, mark_enqueues) for n in func.body]
    close = N.Call(intern("close-queue!"), [N.Var(intern(queue_var))])
    guard = N.If(N.Call(intern("not"), [N.Var(flag)]), close, None)
    func.body = [N.Let([(flag, N.Const(None))], new_body + [guard])]
