"""Parallel any-result search (§3.2.3, third category).

"The third class of operations is searching unordered sets or searching
for one of many acceptable results.  If a program is willing to accept
any result meeting a criterion, then a search can proceed in parallel
without the additional constraint of having to find the same result as
a sequential search."

The transform applies to a tail-recursive search declared
``(any-result f)``: a function whose return-position leaves are either
the self-call (keep looking), nil (miss), or a *hit* expression.  It
produces:

* ``f-search``: the CRI body — each invocation tests its element and
  spawns the next; a hit stores into a shared result cell, first writer
  wins under a cell lock; every invocation first checks the cell and
  *prunes* (stops spawning) once a result exists;
* a wrapper with the original interface that seeds the cell, runs the
  search, joins (``sync``), and returns the winning value (or nil).

The result is any acceptable hit — exactly the freedom the declaration
grants; without it Curare must preserve the sequential first-match
semantics and the search serializes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.conflicts import FunctionAnalysis
from repro.analysis.recursion import CallClassification
from repro.ir import nodes as N
from repro.ir.visitors import copy_node
from repro.sexpr.datum import DEFAULT_SYMBOLS, Symbol, intern


class SearchError(Exception):
    pass


@dataclass
class SearchResult:
    func: N.FuncDef  # the -search worker
    wrapper: N.FuncDef  # original interface
    hit_sites: int = 0
    notes: list[str] = field(default_factory=list)


#: Sentinel marking "no result yet" in the shared cell (a keyword symbol
#: no user value can be eq to by accident).
NONE_SENTINEL = ":curare-no-result"


def to_parallel_search(
    analysis: FunctionAnalysis, suffix: str = "-search"
) -> SearchResult:
    """Build the parallel search pair for ``analysis.func``."""
    func = analysis.func
    recursion = analysis.recursion
    if not recursion.is_recursive:
        raise SearchError(f"{func.name} is not recursive")
    for call in recursion.self_calls:
        if recursion.classification(call) is not CallClassification.TAIL:
            raise SearchError(
                f"{func.name} is not a pure tail-recursive search "
                "(every self-call must be in return position)"
            )
    if len(func.body) != 1:
        raise SearchError("search transform expects a single-expression body")

    new_name = intern(func.name.name + suffix)
    cell = intern("result-cell")
    if cell in func.params:
        cell = DEFAULT_SYMBOLS.gensym("cell")
    result = SearchResult(func=None, wrapper=None)  # type: ignore[arg-type]
    sentinel = N.Quote(intern(NONE_SENTINEL))

    def convert(node: N.Node) -> Optional[N.Node]:
        """Rewrite a return-position expression; None drops the leaf."""
        if isinstance(node, N.If):
            then = convert(node.then)
            els = convert(node.els) if node.els is not None else None
            if then is None and els is None:
                return None
            return N.If(
                copy_node(node.test),
                then if then is not None else N.Const(None),
                els,
                source=node.source,
            )
        if isinstance(node, N.Progn) and node.body:
            converted_last = convert(node.body[-1])
            body = [copy_node(n) for n in node.body[:-1]]
            if converted_last is not None:
                body.append(converted_last)
            return N.Progn(body, source=node.source) if body else None
        if isinstance(node, N.Let) and node.body:
            converted_last = convert(node.body[-1])
            body = [copy_node(n) for n in node.body[:-1]]
            if converted_last is not None:
                body.append(converted_last)
            return N.Let(
                [(name, copy_node(init)) for name, init in node.bindings],
                body,
                sequential=node.sequential,
                source=node.source,
            )
        if isinstance(node, N.Call) and node.is_self_call:
            new_call = N.Call(
                new_name,
                [N.Var(cell)] + [copy_node(a) for a in node.args],
                source=node.source,
            )
            new_call.is_self_call = True
            return N.Spawn(new_call, source=node.source)
        if isinstance(node, N.Const) and node.value is None:
            return None  # a miss: nothing to do
        # A hit: store first-wins under the cell lock.
        result.hit_sites += 1
        return N.Progn(
            [
                N.Call(intern("lock-cell!"), [N.Var(cell)]),
                N.If(
                    N.Call(
                        intern("eq"),
                        [N.FieldAccess(N.Var(cell), ("car",)), copy_node(sentinel)],
                    ),
                    N.Setf(
                        N.FieldPlace(N.Var(cell), ("car",)), copy_node(node)
                    ),
                    None,
                ),
                N.Call(intern("unlock-cell!"), [N.Var(cell)]),
            ],
            source=node.source,
        )

    # Head-recursion: when the function has exactly ONE self-call leaf
    # whose arguments are pure accessor expressions, the continuation
    # spawn hoists *ahead of the element test* — each invocation forwards
    # the search immediately, then tests its own element.  That is what
    # lets N tests run concurrently (§3.1: calls as early as possible).
    self_leaves = [
        c for c in recursion.self_calls
    ]
    hoisted_spawn: Optional[N.Node] = None
    if len(self_leaves) == 1 and _pure_args(self_leaves[0]):
        leaf = self_leaves[0]
        guard_var = _guard_var(leaf)
        new_call = N.Call(
            new_name, [N.Var(cell)] + [copy_node(a) for a in leaf.args],
            source=leaf.source,
        )
        new_call.is_self_call = True
        spawn = N.Spawn(new_call, source=leaf.source)
        if guard_var is not None:
            hoisted_spawn = N.If(
                N.Call(intern("consp"), [N.Var(guard_var)]), spawn, None
            )
            result.notes.append("continuation spawn hoisted before the test")

    converted = convert(func.body[0])
    if result.hit_sites == 0:
        raise SearchError(
            f"{func.name} has no hit leaves — nothing a parallel search "
            "could return"
        )
    if hoisted_spawn is not None:
        converted = N.Progn(
            [hoisted_spawn, _strip_spawns(converted)]
            if converted is not None
            else [hoisted_spawn]
        )
    # Prune: skip the whole body once a result exists.  The unlocked
    # read is a benign race (§3.2.3: any acceptable result) — at worst
    # an invocation does redundant work.
    body = N.If(
        N.Call(
            intern("eq"),
            [N.FieldAccess(N.Var(cell), ("car",)), copy_node(sentinel)],
        ),
        converted if converted is not None else N.Const(None),
        None,
    )
    worker = N.FuncDef(
        new_name, [cell] + list(func.params), [body], source=func.source
    )
    _remark(worker)

    value = DEFAULT_SYMBOLS.gensym("found")
    wrapper = N.FuncDef(
        func.name,
        list(func.params),
        [
            N.Let(
                [(cell, N.Call(intern("cons"), [copy_node(sentinel), N.Const(None)]))],
                [
                    N.Call(new_name, [N.Var(cell)] + [N.Var(p) for p in func.params]),
                    N.Call(intern("sync"), []),
                    N.Let(
                        [(value, N.FieldAccess(N.Var(cell), ("car",)))],
                        [
                            N.If(
                                N.Call(intern("eq"), [N.Var(value), copy_node(sentinel)]),
                                N.Const(None),
                                N.Var(value),
                            )
                        ],
                    ),
                ],
            )
        ],
        source=func.source,
    )
    result.func = worker
    result.wrapper = wrapper
    result.notes.append(
        "result is any acceptable hit (the (any-result ...) declaration's "
        "grant); sequential first-match order is not preserved"
    )
    return result


def _pure_args(call: N.Call) -> bool:
    """All arguments are vars, accessor chains, or constants."""
    for arg in call.args:
        for sub in arg.walk():
            if not isinstance(sub, (N.Var, N.FieldAccess, N.Const, N.Quote)):
                return False
    return True


def _guard_var(call: N.Call) -> Optional[Symbol]:
    """The variable whose cons-ness gates the hoisted spawn: the base of
    the first accessor-chain argument.  Spawning past nil would chain
    (cdr nil)=nil invocations forever."""
    for arg in call.args:
        if isinstance(arg, N.FieldAccess) and isinstance(arg.base, N.Var):
            return arg.base.name
    return None


def _strip_spawns(node: N.Node) -> N.Node:
    """Remove leaf spawns (replaced by the hoisted one)."""
    from repro.ir.visitors import rewrite

    def drop(sub: N.Node):
        if isinstance(sub, N.Spawn):
            return N.Const(None)
        return None

    return rewrite(node, drop)


def _remark(func: N.FuncDef) -> None:
    index = 0
    for node in func.walk():
        if isinstance(node, N.Call) and node.fn is func.name:
            node.is_self_call = True
            node.callsite_index = index
            index += 1
