"""The reordering transform (§3.2.3).

Three categories of declared-reorderable operations lose their ordering
constraints:

1. atomic + commutative + associative updates (``(setq a (+ a 1))``,
   Figure 8) — order doesn't matter, but the read-modify-write must be
   *atomic*; "non-atomic commutative and associative operations can be
   made atomic with the aid of locks", so this transform wraps each such
   update in a per-variable lock;
2. inserts into unordered collections (hash tables) — dismissed at
   analysis time; ``puthash`` is already atomic in the machine (a single
   effect);
3. any-result searches — no code change; the analysis simply does not
   impose result-order constraints on functions declared
   ``(any-result f)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.conflicts import FunctionAnalysis
from repro.declare.registry import DeclarationRegistry
from repro.ir import nodes as N
from repro.ir.visitors import copy_function, rewrite
from repro.sexpr.datum import intern


@dataclass
class ReorderResult:
    func: N.FuncDef
    atomicized: int = 0
    dismissed_conflicts: int = 0
    notes: list[str] = field(default_factory=list)


def atomicize_reorderable(
    analysis: FunctionAnalysis,
    decls: DeclarationRegistry,
    func: Optional[N.FuncDef] = None,
) -> ReorderResult:
    """Wrap declared-reorderable variable updates in per-variable locks.

    ``(setq a (+ a 1))`` becomes::

        (progn (lock-var! 'a) (setq a (+ a 1)) (unlock-var! 'a))
    """
    if func is None:
        func = copy_function(analysis.func)
    result = ReorderResult(func=func)
    result.dismissed_conflicts = len(analysis.dismissed_conflicts())

    reorderable_sources = {
        id(ref.node.source)
        for conflict in analysis.dismissed_conflicts()
        for ref in (conflict.earlier, conflict.later)
        if ref.reorderable_update
    }
    if not reorderable_sources:
        return result

    def wrap(node: N.Node) -> Optional[N.Node]:
        if (
            isinstance(node, N.Setf)
            and isinstance(node.place, N.VarPlace)
            and id(node.source) in reorderable_sources
        ):
            var = node.place.name
            result.atomicized += 1
            return N.Progn(
                [
                    N.Call(intern("lock-var!"), [N.Quote(var)]),
                    node,
                    N.Call(intern("unlock-var!"), [N.Quote(var)]),
                ],
                source=node.source,
            )
        return None

    # rewrite() is bottom-up; wrapping a Setf in a Progn containing itself
    # must not re-trigger — guard by consuming the source id.
    consumed: set[int] = set()

    def wrap_once(node: N.Node) -> Optional[N.Node]:
        if (
            isinstance(node, N.Setf)
            and isinstance(node.place, N.VarPlace)
            and id(node.source) in reorderable_sources
            and id(node) not in consumed
        ):
            consumed.add(id(node))
            return wrap(node)
        return None

    func.body = [rewrite(n, wrap_once) for n in func.body]
    return result
