"""The paper's closed-form performance model (§3.1, §3.2.1, §4.1).

Every formula in the evaluation is here, so the benchmarks can print
analytic-vs-measured side by side:

* potential concurrency      (|H|+|T|)/|H|                        (§3.1)
* lock-limited concurrency   min(d₁..d_u)                          (§3.2.1)
* pool execution time        (⌈d/S⌉−1)(h+t) + (Sh+t)              (§4.1)
* optimal server count       S* = √(d(h+t)/h), capped by c_f and d (§4.1)
"""

from repro.model.concurrency import (
    cri_concurrency,
    effective_concurrency,
    lock_limited_concurrency,
)
from repro.model.allocation import (
    execution_time,
    execution_time_naive,
    optimal_servers,
    optimal_servers_unclamped,
    predicted_speedup,
)

__all__ = [
    "cri_concurrency",
    "effective_concurrency",
    "execution_time",
    "execution_time_naive",
    "lock_limited_concurrency",
    "optimal_servers",
    "optimal_servers_unclamped",
    "predicted_speedup",
]
