"""Observed-vs-predicted validation of the §4.1 allocation model.

The sweep engine's ``model`` family measures a full server sweep on the
simulated machine and hands the curve here; this module renders the
verdict the paper's Figure 10 discussion makes informally: the measured
curve falls steeply from S=1, flattens near S* = √(d(h+t)/h), and the
empirical argmin lands in the same region as the analytic one.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.model.allocation import (
    execution_time,
    optimal_servers,
    optimal_servers_unclamped,
    predicted_speedup,
)


def analytic_curve(d: int, h: float, t: float,
                   servers: Iterable[int]) -> List[dict]:
    """T(S) and predicted speedup at each requested server count."""
    return [
        {
            "servers": s,
            "analytic": round(execution_time(d, s, h, t), 4),
            "predicted_speedup": round(predicted_speedup(d, s, h, t), 4),
        }
        for s in servers
    ]


def validate_allocation_model(
    d: int, h: float, t: float, measured: Dict[int, int]
) -> dict:
    """Compare a measured {servers: makespan} curve to the model.

    Returns a JSON-serializable verdict: the per-S curve (measured,
    analytic, ratio), S* (real-valued and integer-clamped), the
    empirical argmin, and the shape checks the figure benchmarks
    assert — all derived from simulated ticks, hence deterministic.
    """
    if not measured:
        raise ValueError("measured curve is empty")
    curve = []
    for s in sorted(measured):
        analytic = execution_time(d, s, h, t)
        curve.append(
            {
                "servers": s,
                "measured": measured[s],
                "analytic": round(analytic, 4),
                "ratio": round(measured[s] / analytic, 4),
            }
        )
    s_star = optimal_servers(d, h, t)
    empirical_best = min(sorted(measured), key=lambda s: measured[s])
    smin, smax = min(measured), max(measured)
    ratios = [p["ratio"] for p in curve]
    return {
        "d": d,
        "h_dyn": round(h, 4),
        "t_dyn": round(t, 4),
        "curve": curve,
        "s_star": s_star,
        "s_star_unclamped": round(optimal_servers_unclamped(d, h, t), 4),
        "empirical_best": empirical_best,
        "argmin_in_band": abs(empirical_best - s_star) <= max(4, s_star),
        "falls_from_s1": measured[smin] > measured[empirical_best],
        "flattens": measured[smax] <= measured[smin],
        "max_ratio": max(ratios),
        "min_ratio": min(ratios),
        "within_2x": all(0.5 <= r <= 2.0 for r in ratios),
    }
