"""Concurrency formulas (§3.1, §3.2.1)."""

from __future__ import annotations

from typing import Iterable, Optional


def cri_concurrency(h: float, t: float) -> float:
    """(|H|+|T|)/|H| — processes executing simultaneously under CRI.

    Proof sketch from the paper: during the |H|+|T| steps of one
    invocation, a new process is spawned every |H| steps.
    """
    if h <= 0:
        raise ValueError("head size must be positive (the spawn itself is in the head)")
    if t < 0:
        raise ValueError("tail size must be non-negative")
    return (h + t) / h


def lock_limited_concurrency(distances: Iterable[int]) -> Optional[int]:
    """min(d₁..d_u): with invocations conflicting at these distances and
    locks released at invocation end, at most min(dᵢ) invocations overlap
    (§3.2.1).  None (no conflicts) means unbounded."""
    ds = [d for d in distances]
    if not ds:
        return None
    if any(d < 1 for d in ds):
        raise ValueError("conflict distances are at least 1")
    return min(ds)


def effective_concurrency(
    h: float, t: float, distances: Iterable[int] = ()
) -> float:
    """c_f = min((|H|+|T|)/|H|, min dᵢ) — what a function can keep busy."""
    c = cri_concurrency(h, t)
    bound = lock_limited_concurrency(distances)
    if bound is not None:
        c = min(c, float(bound))
    return c
