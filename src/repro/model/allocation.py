"""Server allocation model (§4.1, Figure 10).

The paper's derivation: d invocations divide into ⌈d/S⌉ groups of S;
the first approximation charges (Sh+t) per group (Figure 10), refined by
overlapping groups — the second group starts when a first-group server
has run h+t steps:

    T(S) = (⌈d/S⌉ − 1)(h+t) + (Sh+t)          for S ≤ d

Minimizing over real S:  dT/dS = 0  at  S* = √(d(h+t)/h).
"""

from __future__ import annotations

import math
from typing import Optional


def execution_time_naive(d: int, s: int, h: float, t: float) -> float:
    """Figure 10's first approximation: ⌈d/S⌉ · (Sh + t)."""
    _validate(d, s, h, t)
    return math.ceil(d / s) * (s * h + t)


def execution_time(d: int, s: int, h: float, t: float) -> float:
    """The refined §4.1 formula: (⌈d/S⌉−1)(h+t) + (Sh+t), for S ≤ d."""
    _validate(d, s, h, t)
    if s > d:
        s = d  # more servers than invocations adds nothing
    return (math.ceil(d / s) - 1) * (h + t) + (s * h + t)


def optimal_servers_unclamped(d: int, h: float, t: float) -> float:
    """S* = √(d(h+t)/h) — the real-valued minimizer of T(S)."""
    if d < 1:
        raise ValueError("need at least one invocation")
    if h <= 0 or t < 0:
        raise ValueError("h must be positive and t non-negative")
    return math.sqrt(d * (h + t) / h)


def optimal_servers(
    d: int, h: float, t: float, cf: Optional[float] = None
) -> int:
    """The integer server count to use: S* rounded to the better integer
    neighbour, capped by the invocation count d and by c_f — "the value
    of S calculated above has to be balanced against c_f ... use the
    minimum of these two values" (§4.1)."""
    star = optimal_servers_unclamped(d, h, t)
    lo = max(1, math.floor(star))
    hi = lo + 1
    best = lo if execution_time(d, lo, h, t) <= execution_time(d, hi, h, t) else hi
    best = min(best, d)
    if cf is not None:
        best = min(best, max(1, int(cf)))
    return best


def predicted_speedup(d: int, s: int, h: float, t: float) -> float:
    """Sequential time d(h+t) over pooled time T(S)."""
    seq = d * (h + t)
    par = execution_time(d, s, h, t)
    return seq / par if par > 0 else float("inf")


def _validate(d: int, s: int, h: float, t: float) -> None:
    if d < 1:
        raise ValueError("need at least one invocation")
    if s < 1:
        raise ValueError("need at least one server")
    if h <= 0:
        raise ValueError("head size must be positive")
    if t < 0:
        raise ValueError("tail size must be non-negative")
