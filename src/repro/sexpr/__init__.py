"""S-expression substrate: datum types, reader, and printer.

This package is the bottom layer of the Curare reproduction.  It defines
the object model shared by every other layer:

* :class:`~repro.sexpr.datum.Symbol` — interned Lisp symbols,
* :class:`~repro.sexpr.datum.Cons` — *mutable* cons cells (mutability is
  essential: the whole paper is about side effects on list structure),
* :func:`~repro.sexpr.reader.read` / :func:`~repro.sexpr.reader.read_all`
  — text to data,
* :func:`~repro.sexpr.printer.write_str` — data back to text.
"""

from repro.sexpr.datum import (
    Cons,
    Symbol,
    SymbolTable,
    cons,
    from_pylist,
    intern,
    is_proper_list,
    list_to_pylist,
    lisp_list,
    proper_list_length,
)
from repro.sexpr.reader import ReadError, Reader, read, read_all
from repro.sexpr.printer import write_str, pretty_str

__all__ = [
    "Cons",
    "Symbol",
    "SymbolTable",
    "cons",
    "intern",
    "lisp_list",
    "from_pylist",
    "list_to_pylist",
    "is_proper_list",
    "proper_list_length",
    "Reader",
    "ReadError",
    "read",
    "read_all",
    "write_str",
    "pretty_str",
]
