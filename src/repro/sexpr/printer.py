"""Printer: datum back to S-expression text.

``write_str`` produces machine-readable output (read/print round-trips
for acyclic data); ``pretty_str`` adds indentation for ``defun``-like
forms so transformed programs are human-readable — the paper stresses
that Curare's output is a feedback channel for the programmer (§6).
"""

from __future__ import annotations

from typing import Any

from repro.sexpr.datum import Cons, Symbol

_QUOTE_ABBREV = {
    "quote": "'",
    "quasiquote": "`",
    "unquote": ",",
    "unquote-splicing": ",@",
    "function": "#'",
}


def _unwrap_future(obj: Any) -> Any:
    """Resolved futures print as their values (Multilisp transparency).

    Duck-typed to keep the sexpr layer below the lisp layer.
    """
    seen = 0
    while (
        getattr(obj, "resolved", False) is True
        and hasattr(obj, "future_id")
        and seen < 100
    ):
        obj = obj.value
        seen += 1
    return obj


def _atom_str(obj: Any) -> str:
    if obj is None:
        return "nil"
    if obj is True:
        return "t"
    if obj is False:
        # The mini-Lisp has no distinct false; print as nil for fidelity.
        return "nil"
    if isinstance(obj, Symbol):
        return obj.name
    if isinstance(obj, str):
        escaped = obj.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    if isinstance(obj, float):
        return repr(obj)
    if isinstance(obj, int):
        return str(obj)
    # Structures, closures, futures, etc. print via their own repr.
    return repr(obj)


def write_str(obj: Any, max_depth: int = 200, max_length: int = 10_000) -> str:
    """Render ``obj`` as S-expression text.

    ``max_depth``/``max_length`` guard against cyclic structure; when a
    bound is hit the output contains ``...`` (and is then not readable,
    by design).
    """
    out: list[str] = []
    _write(obj, out, max_depth, max_length, set())
    return "".join(out)


def _write(obj: Any, out: list[str], depth: int, length: int, on_path: set[int]) -> None:
    obj = _unwrap_future(obj)
    if not isinstance(obj, Cons):
        out.append(_atom_str(obj))
        return
    if depth <= 0 or id(obj) in on_path:
        out.append("...")
        return
    # Quote family abbreviation: (quote x) -> 'x
    if (
        isinstance(obj.car, Symbol)
        and obj.car.name in _QUOTE_ABBREV
        and isinstance(obj.cdr, Cons)
        and obj.cdr.cdr is None
    ):
        out.append(_QUOTE_ABBREV[obj.car.name])
        _write(obj.cdr.car, out, depth - 1, length, on_path)
        return
    on_path.add(id(obj))
    out.append("(")
    node: Any = obj
    count = 0
    first = True
    while isinstance(node, Cons):
        if count >= length or (id(node) in on_path and node is not obj):
            out.append(" ...")
            node = None
            break
        if not first:
            out.append(" ")
        _write(node.car, out, depth - 1, length, on_path)
        first = False
        count += 1
        node = _unwrap_future(node.cdr)
    if node is not None:
        out.append(" . ")
        _write(node, out, depth - 1, length, on_path)
    out.append(")")
    on_path.discard(id(obj))


# --- pretty printing ---------------------------------------------------

# Forms whose first N subforms stay on the head line, with the rest
# indented as a body.
_BODY_FORMS = {
    "defun": 2,
    "defmacro": 2,
    "lambda": 1,
    "let": 1,
    "let*": 1,
    "when": 1,
    "unless": 1,
    "while": 1,
    "dolist": 1,
    "progn": 0,
    "cond": 0,
    "locking": 1,
}

_PRETTY_WIDTH = 78


def pretty_str(obj: Any, indent: int = 0) -> str:
    """Render ``obj`` with indentation suitable for program text."""
    flat = write_str(obj)
    if len(flat) + indent <= _PRETTY_WIDTH or not isinstance(obj, Cons):
        return flat

    head = obj.car
    items: list[Any] = []
    node: Any = obj
    while isinstance(node, Cons):
        items.append(node.car)
        node = node.cdr
    if node is not None:
        return flat  # dotted lists never need pretty bodies

    if isinstance(head, Symbol) and head.name in _BODY_FORMS:
        keep = _BODY_FORMS[head.name] + 1
        head_parts = [write_str(x) for x in items[:keep]]
        head_line = "(" + " ".join(head_parts)
        body_indent = indent + 2
        lines = [head_line]
        for sub in items[keep:]:
            lines.append(" " * body_indent + pretty_str(sub, body_indent))
        return "\n".join(lines) + ")"

    # Generic call: align arguments under the first argument.
    head_txt = write_str(items[0]) if items else ""
    arg_indent = indent + len(head_txt) + 2
    if items[1:]:
        parts = [pretty_str(items[1], arg_indent)]
        for sub in items[2:]:
            parts.append(" " * arg_indent + pretty_str(sub, arg_indent))
        return "(" + head_txt + " " + "\n".join(parts) + ")"
    return "(" + head_txt + ")"


__all__ = ["write_str", "pretty_str"]
