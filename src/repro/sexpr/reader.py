"""S-expression reader (parser).

Turns text into the datum model of :mod:`repro.sexpr.datum`:

* ``(a b c)``  → chain of :class:`Cons`
* ``(a . b)``  → dotted pair
* ``'x``       → ``(quote x)``
* ``` `x ``    → ``(quasiquote x)`` and ``,``/``,@`` accordingly
* ``#'f``      → ``(function f)``
* numbers      → Python ``int``/``float``
* ``t``/``nil``→ ``True`` / ``None``
* ``"s"``      → Python ``str``

Symbols are case-insensitive and canonicalized to lower case, as in
traditional Lisp readers.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.sexpr.datum import Cons, Symbol, SymbolTable, DEFAULT_SYMBOLS
from repro.sexpr.tokens import Token, TokenKind, TokenizeError, tokenize


class ReadError(Exception):
    """Raised on structurally malformed input."""

    def __init__(self, message: str, token: Optional[Token] = None):
        if token is not None:
            message = f"{message} at line {token.line}, column {token.col}"
        super().__init__(message)
        self.token = token


_NUMBER_LEAD = frozenset("0123456789+-.")


def _parse_number(text: str) -> Optional[Any]:
    """Parse ``text`` as an int or float, or return None if not numeric.

    The leading-character screen lets the overwhelmingly common case — a
    symbol name — skip the exception-based probes entirely.
    """
    if text[0] not in _NUMBER_LEAD:
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return None


class Reader:
    """A reusable reader bound to a symbol table."""

    def __init__(self, symbols: SymbolTable | None = None):
        self.symbols = symbols if symbols is not None else DEFAULT_SYMBOLS

    # Reader-macro symbol names.
    _WRAPPERS = {
        TokenKind.QUOTE: "quote",
        TokenKind.QUASIQUOTE: "quasiquote",
        TokenKind.UNQUOTE: "unquote",
        TokenKind.UNQUOTE_SPLICING: "unquote-splicing",
        TokenKind.HASH_QUOTE: "function",
    }

    def read_all(self, text: str) -> list[Any]:
        """Read every form in ``text`` and return them as a Python list."""
        tokens = tokenize(text)
        pos = 0
        forms: list[Any] = []
        while tokens[pos].kind is not TokenKind.EOF:
            form, pos = self._read_form(tokens, pos)
            forms.append(form)
        return forms

    def read(self, text: str) -> Any:
        """Read exactly one form; error if input holds zero or several."""
        forms = self.read_all(text)
        if len(forms) != 1:
            raise ReadError(f"expected exactly one form, got {len(forms)}")
        return forms[0]

    def _read_form(self, tokens: list[Token], pos: int) -> tuple[Any, int]:
        tok = tokens[pos]
        kind = tok.kind
        if kind is TokenKind.EOF:
            raise ReadError("unexpected end of input", tok)
        if kind is TokenKind.LPAREN:
            return self._read_list(tokens, pos + 1, tok)
        if kind is TokenKind.RPAREN:
            raise ReadError("unexpected ')'", tok)
        if kind is TokenKind.DOT:
            raise ReadError("'.' outside list", tok)
        if kind in self._WRAPPERS:
            inner, pos = self._read_form(tokens, pos + 1)
            wrapper = self.symbols.intern(self._WRAPPERS[kind])
            return Cons(wrapper, Cons(inner, None)), pos
        if kind is TokenKind.STRING:
            return tok.text, pos + 1
        # ATOM
        return self._read_atom(tok), pos + 1

    def _read_atom(self, tok: Token) -> Any:
        text = tok.text
        num = _parse_number(text)
        if num is not None:
            return num
        # Source is almost always already lower-case; skip the copy then.
        name = text if text.islower() else text.lower()
        if name == "nil":
            return None
        if name == "t":
            return True
        return self.symbols.intern(name)

    def _read_list(self, tokens: list[Token], pos: int, open_tok: Token) -> tuple[Any, int]:
        items: list[Any] = []
        tail: Any = None
        while True:
            tok = tokens[pos]
            if tok.kind is TokenKind.EOF:
                raise ReadError("unterminated list", open_tok)
            if tok.kind is TokenKind.RPAREN:
                pos += 1
                break
            if tok.kind is TokenKind.DOT:
                if not items:
                    raise ReadError("'.' at start of list", tok)
                tail, pos = self._read_form(tokens, pos + 1)
                closer = tokens[pos]
                if closer.kind is not TokenKind.RPAREN:
                    raise ReadError("expected ')' after dotted tail", closer)
                pos += 1
                break
            form, pos = self._read_form(tokens, pos)
            items.append(form)
        result: Any = tail
        for item in reversed(items):
            result = Cons(item, result)
        return result, pos


_DEFAULT_READER = Reader()


def read(text: str) -> Any:
    """Read one form using the default symbol table."""
    return _DEFAULT_READER.read(text)


def read_all(text: str) -> list[Any]:
    """Read all forms using the default symbol table."""
    return _DEFAULT_READER.read_all(text)


__all__ = ["Reader", "ReadError", "read", "read_all", "TokenizeError"]
