"""Tokenizer for the S-expression reader.

Token kinds are deliberately few: parens, dot, quote-family reader
macros, atoms, and strings.  Positions (line, column) are tracked so
read errors point at source.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Iterator


class TokenKind(Enum):
    LPAREN = auto()
    RPAREN = auto()
    DOT = auto()
    QUOTE = auto()  # '
    QUASIQUOTE = auto()  # `
    UNQUOTE = auto()  # ,
    UNQUOTE_SPLICING = auto()  # ,@
    ATOM = auto()  # symbol or number
    STRING = auto()
    HASH_QUOTE = auto()  # #' (function quote — read as plain quote of symbol)
    EOF = auto()


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    col: int

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.col})"


class TokenizeError(Exception):
    """Raised on malformed lexical input (unterminated string, etc.)."""

    def __init__(self, message: str, line: int, col: int):
        super().__init__(f"{message} at line {line}, column {col}")
        self.line = line
        self.col = col


_DELIMITERS = set("()'`,\" \t\n\r;")


def tokenize(text: str) -> Iterator[Token]:
    """Yield tokens from ``text``, ending with a single EOF token.

    Comments run from ``;`` to end of line.  ``#|`` ... ``|#`` block
    comments nest, as in Common Lisp.
    """
    i = 0
    n = len(text)
    line = 1
    col = 1

    def advance(k: int = 1) -> None:
        nonlocal i, line, col
        for _ in range(k):
            if i < n and text[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = text[i]
        if ch in " \t\n\r":
            advance()
            continue
        if ch == ";":
            while i < n and text[i] != "\n":
                advance()
            continue
        if ch == "#" and i + 1 < n and text[i + 1] == "|":
            start_line, start_col = line, col
            depth = 1
            advance(2)
            while i < n and depth > 0:
                if text[i] == "#" and i + 1 < n and text[i + 1] == "|":
                    depth += 1
                    advance(2)
                elif text[i] == "|" and i + 1 < n and text[i + 1] == "#":
                    depth -= 1
                    advance(2)
                else:
                    advance()
            if depth > 0:
                raise TokenizeError("unterminated block comment", start_line, start_col)
            continue
        if ch == "(":
            yield Token(TokenKind.LPAREN, "(", line, col)
            advance()
            continue
        if ch == ")":
            yield Token(TokenKind.RPAREN, ")", line, col)
            advance()
            continue
        if ch == "'":
            yield Token(TokenKind.QUOTE, "'", line, col)
            advance()
            continue
        if ch == "`":
            yield Token(TokenKind.QUASIQUOTE, "`", line, col)
            advance()
            continue
        if ch == ",":
            if i + 1 < n and text[i + 1] == "@":
                yield Token(TokenKind.UNQUOTE_SPLICING, ",@", line, col)
                advance(2)
            else:
                yield Token(TokenKind.UNQUOTE, ",", line, col)
                advance()
            continue
        if ch == "#" and i + 1 < n and text[i + 1] == "'":
            yield Token(TokenKind.HASH_QUOTE, "#'", line, col)
            advance(2)
            continue
        if ch == '"':
            start_line, start_col = line, col
            advance()
            chars: list[str] = []
            while i < n and text[i] != '"':
                if text[i] == "\\":
                    advance()
                    if i >= n:
                        break
                    esc = text[i]
                    chars.append({"n": "\n", "t": "\t", "r": "\r"}.get(esc, esc))
                    advance()
                else:
                    chars.append(text[i])
                    advance()
            if i >= n:
                raise TokenizeError("unterminated string", start_line, start_col)
            advance()  # closing quote
            yield Token(TokenKind.STRING, "".join(chars), start_line, start_col)
            continue
        # Atom: read to next delimiter.
        start_line, start_col = line, col
        start = i
        while i < n and text[i] not in _DELIMITERS:
            advance()
        word = text[start:i]
        if word == ".":
            yield Token(TokenKind.DOT, ".", start_line, start_col)
        else:
            yield Token(TokenKind.ATOM, word, start_line, start_col)

    yield Token(TokenKind.EOF, "", line, col)
