"""Tokenizer for the S-expression reader.

Token kinds are deliberately few: parens, dot, quote-family reader
macros, atoms, and strings.  Positions (line, column) are tracked so
read errors point at source.
"""

from __future__ import annotations

from enum import Enum, auto


class TokenKind(Enum):
    LPAREN = auto()
    RPAREN = auto()
    DOT = auto()
    QUOTE = auto()  # '
    QUASIQUOTE = auto()  # `
    UNQUOTE = auto()  # ,
    UNQUOTE_SPLICING = auto()  # ,@
    ATOM = auto()  # symbol or number
    STRING = auto()
    HASH_QUOTE = auto()  # #' (function quote — read as plain quote of symbol)
    EOF = auto()


class Token:
    """A lexical token.  Plain slotted class: the reader allocates one
    per token and the frozen-dataclass ``object.__setattr__`` detour
    showed up in read-heavy profiles."""

    __slots__ = ("kind", "text", "line", "col")

    def __init__(self, kind: TokenKind, text: str, line: int, col: int):
        self.kind = kind
        self.text = text
        self.line = line
        self.col = col

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.col})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Token):
            return NotImplemented
        return (
            self.kind is other.kind
            and self.text == other.text
            and self.line == other.line
            and self.col == other.col
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.text, self.line, self.col))


class TokenizeError(Exception):
    """Raised on malformed lexical input (unterminated string, etc.)."""

    def __init__(self, message: str, line: int, col: int):
        super().__init__(f"{message} at line {line}, column {col}")
        self.line = line
        self.col = col


_DELIMITERS = frozenset("()'`,\" \t\n\r;")

_ESCAPES = {"n": "\n", "t": "\t", "r": "\r"}


def tokenize(text: str) -> "list[Token]":
    """Tokenize ``text`` into a list ending with a single EOF token.

    Comments run from ``;`` to end of line.  ``#|`` ... ``|#`` block
    comments nest, as in Common Lisp.

    The scanner advances by *runs* where a run cannot contain a newline
    (atoms, line comments): one slice and one column add replace a
    per-character bookkeeping call, which dominated read time.
    """
    out: list[Token] = []
    emit = out.append
    i = 0
    n = len(text)
    line = 1
    col = 1
    lparen = TokenKind.LPAREN
    rparen = TokenKind.RPAREN
    atom = TokenKind.ATOM

    while i < n:
        ch = text[i]
        if ch == " " or ch == "\t" or ch == "\r":
            i += 1
            col += 1
            continue
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch == "(":
            emit(Token(lparen, "(", line, col))
            i += 1
            col += 1
            continue
        if ch == ")":
            emit(Token(rparen, ")", line, col))
            i += 1
            col += 1
            continue
        if ch == ";":
            j = text.find("\n", i)
            if j < 0:
                j = n
            col += j - i
            i = j
            continue
        if ch == "'":
            emit(Token(TokenKind.QUOTE, "'", line, col))
            i += 1
            col += 1
            continue
        if ch == "`":
            emit(Token(TokenKind.QUASIQUOTE, "`", line, col))
            i += 1
            col += 1
            continue
        if ch == ",":
            if i + 1 < n and text[i + 1] == "@":
                emit(Token(TokenKind.UNQUOTE_SPLICING, ",@", line, col))
                i += 2
                col += 2
            else:
                emit(Token(TokenKind.UNQUOTE, ",", line, col))
                i += 1
                col += 1
            continue
        if ch == "#" and i + 1 < n and text[i + 1] == "|":
            start_line, start_col = line, col
            depth = 1
            i += 2
            col += 2
            while i < n and depth > 0:
                c = text[i]
                if c == "#" and i + 1 < n and text[i + 1] == "|":
                    depth += 1
                    i += 2
                    col += 2
                elif c == "|" and i + 1 < n and text[i + 1] == "#":
                    depth -= 1
                    i += 2
                    col += 2
                elif c == "\n":
                    i += 1
                    line += 1
                    col = 1
                else:
                    i += 1
                    col += 1
            if depth > 0:
                raise TokenizeError("unterminated block comment", start_line, start_col)
            continue
        if ch == "#" and i + 1 < n and text[i + 1] == "'":
            emit(Token(TokenKind.HASH_QUOTE, "#'", line, col))
            i += 2
            col += 2
            continue
        if ch == '"':
            start_line, start_col = line, col
            i += 1
            col += 1
            chars: list[str] = []
            while i < n and text[i] != '"':
                c = text[i]
                if c == "\\":
                    i += 1
                    col += 1
                    if i >= n:
                        break
                    c = _ESCAPES.get(text[i], text[i])
                    chars.append(c)
                else:
                    chars.append(c)
                if text[i] == "\n":
                    line += 1
                    col = 1
                else:
                    col += 1
                i += 1
            if i >= n:
                raise TokenizeError("unterminated string", start_line, start_col)
            i += 1  # closing quote
            col += 1
            emit(Token(TokenKind.STRING, "".join(chars), start_line, start_col))
            continue
        # Atom: read to the next delimiter.  Delimiters include the
        # newline, so the run is newline-free by construction.
        start = i
        j = i + 1
        while j < n and text[j] not in _DELIMITERS:
            j += 1
        word = text[start:j]
        start_col = col
        col += j - i
        i = j
        if word == ".":
            emit(Token(TokenKind.DOT, ".", line, start_col))
        else:
            emit(Token(atom, word, line, start_col))

    emit(Token(TokenKind.EOF, "", line, col))
    return out
