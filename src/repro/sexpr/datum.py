"""Lisp datum types: interned symbols and mutable cons cells.

The object model deliberately mirrors a real Lisp heap:

* symbols are interned, so identity comparison (`is`) implements ``eq``;
* cons cells are mutable two-field records whose *identity* matters —
  conflict detection (paper §2) is entirely about two code paths reaching
  the same cell;
* every cons cell carries a monotonically increasing ``cell_id`` so that
  execution traces can name the memory locations they touch.

Numbers, strings, booleans, and ``None`` (as ``nil``) are represented by
the corresponding Python objects.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Iterable, Iterator, Optional


class Symbol:
    """An interned Lisp symbol.

    Symbols should be created through :func:`intern` (or a
    :class:`SymbolTable`), never directly, so that two symbols with the
    same name are the same object and ``eq`` is Python ``is``.
    """

    __slots__ = ("name", "_hash")

    def __init__(self, name: str):
        self.name = name
        self._hash = hash(name)

    def __repr__(self) -> str:
        return self.name

    def __str__(self) -> str:
        return self.name

    # Symbols are interned and immortal; the name hash is precomputed
    # once at creation (symbols key every environment dict operation).
    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        # Uninterned symbols (gensyms) are only equal by identity; two
        # interned symbols with the same name are the same object, so
        # falling back to name comparison is safe only for symbols from
        # *different* tables (used by tests).
        return isinstance(other, Symbol) and other.name == self.name


class SymbolTable:
    """A symbol intern table.

    A separate table per Lisp world keeps test isolation clean; the module
    level :func:`intern` uses a default shared table, which is what the
    interpreter and transformer use.
    """

    def __init__(self) -> None:
        self._table: dict[str, Symbol] = {}
        self._lock = threading.Lock()
        self._gensym_counter = itertools.count()

    def intern(self, name: str) -> Symbol:
        """Return the unique symbol named ``name`` (creating it if new)."""
        sym = self._table.get(name)
        if sym is None:
            with self._lock:
                sym = self._table.get(name)
                if sym is None:
                    sym = Symbol(name)
                    self._table[name] = sym
        return sym

    def gensym(self, prefix: str = "g") -> Symbol:
        """Return a fresh symbol guaranteed not to collide with interned ones."""
        while True:
            name = f"#:{prefix}{next(self._gensym_counter)}"
            if name not in self._table:
                with self._lock:
                    if name not in self._table:
                        sym = Symbol(name)
                        self._table[name] = sym
                        return sym

    def __contains__(self, name: str) -> bool:
        return name in self._table

    def __len__(self) -> int:
        return len(self._table)


DEFAULT_SYMBOLS = SymbolTable()


def intern(name: str) -> Symbol:
    """Intern ``name`` in the default symbol table."""
    return DEFAULT_SYMBOLS.intern(name)


def gensym(prefix: str = "g") -> Symbol:
    """Make a fresh uninterned-style symbol in the default table."""
    return DEFAULT_SYMBOLS.gensym(prefix)


_cell_ids = itertools.count(1)


class Cons:
    """A mutable cons cell.

    ``car`` and ``cdr`` are plain attributes, so ``setf``-style mutation
    is an attribute store.  ``cell_id`` names the cell in traces and in
    the lock table of the simulated machine.
    """

    __slots__ = ("car", "cdr", "cell_id")

    def __init__(self, car: Any = None, cdr: Any = None):
        self.car = car
        self.cdr = cdr
        self.cell_id = next(_cell_ids)

    def __repr__(self) -> str:  # avoid infinite loops on cyclic structure
        from repro.sexpr.printer import write_str

        return write_str(self, max_depth=8, max_length=16)

    # Identity semantics: cons cells hash/compare by identity (Lisp eq).
    __hash__ = object.__hash__

    def __eq__(self, other: object) -> bool:
        return self is other

    def fields(self) -> tuple[str, ...]:
        return ("car", "cdr")

    def get_field(self, field: str) -> Any:
        if field == "car":
            return self.car
        if field == "cdr":
            return self.cdr
        raise AttributeError(f"cons cell has no field {field!r}")

    def set_field(self, field: str, value: Any) -> None:
        if field == "car":
            self.car = value
        elif field == "cdr":
            self.cdr = value
        else:
            raise AttributeError(f"cons cell has no field {field!r}")


def cons(car: Any, cdr: Any) -> Cons:
    """Allocate a fresh cons cell."""
    return Cons(car, cdr)


def lisp_list(*items: Any) -> Optional[Cons]:
    """Build a proper list from ``items`` (``nil`` is ``None``)."""
    head: Optional[Cons] = None
    for item in reversed(items):
        head = Cons(item, head)
    return head


def from_pylist(items: Iterable[Any]) -> Optional[Cons]:
    """Build a proper Lisp list from any Python iterable."""
    return lisp_list(*items)


def list_to_pylist(lst: Any) -> list[Any]:
    """Convert a proper Lisp list to a Python list.

    Raises ``ValueError`` on dotted or cyclic structure.  The common
    case is a short acyclic list, so the first pass runs without cycle
    bookkeeping up to a generous length bound; only suspiciously long
    lists pay for a visited set.
    """
    out: list[Any] = []
    append = out.append
    node = lst
    limit = 4096
    while node is not None:
        if not isinstance(node, Cons):
            raise ValueError(f"improper list: dotted tail {node!r}")
        append(node.car)
        node = node.cdr
        limit -= 1
        if limit == 0:
            return _list_to_pylist_checked(lst)
    return out


def _list_to_pylist_checked(lst: Any) -> list[Any]:
    """Slow path with full cycle detection, for very long inputs."""
    out: list[Any] = []
    seen: set[int] = set()
    node = lst
    while node is not None:
        if not isinstance(node, Cons):
            raise ValueError(f"improper list: dotted tail {node!r}")
        if id(node) in seen:
            raise ValueError("cyclic list")
        seen.add(id(node))
        out.append(node.car)
        node = node.cdr
    return out


def iter_list(lst: Any) -> Iterator[Any]:
    """Iterate over the elements of a proper list (no cycle check)."""
    node = lst
    while isinstance(node, Cons):
        yield node.car
        node = node.cdr


def is_proper_list(obj: Any) -> bool:
    """True iff ``obj`` is nil or an acyclic nil-terminated cons chain."""
    seen: set[int] = set()
    node = obj
    while node is not None:
        if not isinstance(node, Cons) or id(node) in seen:
            return False
        seen.add(id(node))
        node = node.cdr
    return True


def proper_list_length(lst: Any) -> int:
    """Length of a proper list; raises ``ValueError`` otherwise."""
    return len(list_to_pylist(lst))
