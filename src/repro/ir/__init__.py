"""Intermediate representation of Lisp functions.

Curare is a source-to-source transformer; this IR is its working form.
Lowering (:mod:`repro.ir.lower`) macroexpands and converts S-expressions
into typed nodes — crucially turning every ``car``/``cdr``/struct-accessor
chain into an explicit :class:`~repro.ir.nodes.FieldAccess` with its
accessor word, which is what the §2 path analysis consumes.  Unparsing
(:mod:`repro.ir.unparse`) emits runnable Lisp back out.

The CFG (:mod:`repro.ir.cfg`) and dominator analysis
(:mod:`repro.ir.dominators`) implement the paper's head/tail partition:
a statement is in the *tail* of a function iff it is dominated by a
recursive call (§3.1).
"""

from repro.ir.nodes import (
    And,
    Call,
    Const,
    FieldAccess,
    FieldPlace,
    FuncDef,
    FunctionRef,
    If,
    Lambda,
    Let,
    Node,
    Or,
    Progn,
    Quote,
    Setf,
    Setq,
    Spawn,
    FutureExpr,
    Var,
    VarPlace,
    While,
)
from repro.ir.lower import LowerError, lower_function, lower_expr
from repro.ir.unparse import unparse, unparse_function
from repro.ir.cfg import CFG, build_cfg
from repro.ir.dominators import compute_dominators, dominated_by_any

__all__ = [
    "And",
    "CFG",
    "Call",
    "Const",
    "FieldAccess",
    "FieldPlace",
    "FuncDef",
    "FunctionRef",
    "FutureExpr",
    "If",
    "Lambda",
    "Let",
    "LowerError",
    "Node",
    "Or",
    "Progn",
    "Quote",
    "Setf",
    "Setq",
    "Spawn",
    "Var",
    "VarPlace",
    "While",
    "build_cfg",
    "compute_dominators",
    "dominated_by_any",
    "lower_expr",
    "lower_function",
    "unparse",
    "unparse_function",
]
