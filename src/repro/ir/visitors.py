"""IR traversal and rewriting utilities shared by analyses and transforms."""

from __future__ import annotations

from typing import Callable, Optional

from repro.ir import nodes as N
from repro.sexpr.datum import Symbol


def free_variables(node: N.Node, bound: Optional[frozenset[Symbol]] = None) -> set[Symbol]:
    """Variables read by ``node`` that are not bound within it."""
    bound = bound if bound is not None else frozenset()
    out: set[Symbol] = set()
    _free(node, bound, out)
    return out


def _free(node: N.Node, bound: frozenset[Symbol], out: set[Symbol]) -> None:
    if isinstance(node, N.Var):
        if node.name not in bound:
            out.add(node.name)
        return
    if isinstance(node, N.Setf):
        if isinstance(node.place, N.VarPlace):
            if node.place.name not in bound:
                out.add(node.place.name)  # a setq both reads the frame and writes
        else:
            _free(node.place.base, bound, out)
        _free(node.value, bound, out)
        return
    if isinstance(node, N.Let):
        inner = bound
        for name, init in node.bindings:
            _free(init, bound if not node.sequential else inner, out)
            inner = inner | {name}
        for sub in node.body:
            _free(sub, inner, out)
        return
    if isinstance(node, N.Lambda):
        inner = bound | set(node.params)
        for sub in node.body:
            _free(sub, inner, out)
        return
    for child in node.children():
        _free(child, bound, out)


def assigned_variables(node: N.Node) -> set[Symbol]:
    """Variables assigned (setq'd) anywhere inside ``node``."""
    out: set[Symbol] = set()
    for sub in node.walk():
        if isinstance(sub, N.Setf) and isinstance(sub.place, N.VarPlace):
            out.add(sub.place.name)
    return out


# Flattened __slots__ per node class, resolved once.  ``copy.copy`` on a
# slotted instance detours through ``__reduce_ex__``/``_reconstruct``; a
# direct slot-for-slot copy is several times cheaper and transforms clone
# whole function bodies on every analysis run.
_SLOTS_CACHE: dict[type, tuple[str, ...]] = {}


def _shallow_clone(node: N.Node) -> N.Node:
    cls = node.__class__
    slots = _SLOTS_CACHE.get(cls)
    if slots is None:
        names: list[str] = []
        for klass in cls.__mro__:
            declared = getattr(klass, "__slots__", ())
            names.extend((declared,) if isinstance(declared, str) else declared)
        slots = _SLOTS_CACHE[cls] = tuple(names)
    new = cls.__new__(cls)
    for name in slots:
        setattr(new, name, getattr(node, name))
    return new


def copy_node(node: N.Node) -> N.Node:
    """Deep-copy an IR subtree with *fresh node ids*."""
    new = _shallow_clone(node)
    new.node_id = next(N._node_ids)
    if isinstance(node, N.FieldAccess):
        new.base = copy_node(node.base)
    elif isinstance(node, N.Setf):
        if isinstance(node.place, N.FieldPlace):
            new.place = N.FieldPlace(
                copy_node(node.place.base), node.place.fields, node.place.accessor_names
            )
        node_value = copy_node(node.value)
        new.value = node_value
    elif isinstance(node, N.If):
        new.test = copy_node(node.test)
        new.then = copy_node(node.then)
        new.els = copy_node(node.els) if node.els is not None else None
    elif isinstance(node, N.Progn):
        new.body = [copy_node(n) for n in node.body]
    elif isinstance(node, N.Let):
        new.bindings = [(name, copy_node(init)) for name, init in node.bindings]
        new.body = [copy_node(n) for n in node.body]
    elif isinstance(node, N.While):
        new.test = copy_node(node.test)
        new.body = [copy_node(n) for n in node.body]
    elif isinstance(node, (N.And, N.Or)):
        new.args = [copy_node(n) for n in node.args]
    elif isinstance(node, N.Call):
        new.args = [copy_node(n) for n in node.args]
    elif isinstance(node, N.Lambda):
        new.body = [copy_node(n) for n in node.body]
    elif isinstance(node, N.Spawn):
        new.call = copy_node(node.call)
    elif isinstance(node, N.FutureExpr):
        new.expr = copy_node(node.expr)
    return new


def copy_function(func: N.FuncDef) -> N.FuncDef:
    return N.FuncDef(
        func.name, list(func.params), [copy_node(n) for n in func.body], func.source
    )


Rewriter = Callable[[N.Node], Optional[N.Node]]


def rewrite(node: N.Node, fn: Rewriter) -> N.Node:
    """Bottom-up rewriting: ``fn`` returns a replacement or None to keep.

    Children are rewritten first, then ``fn`` is offered the (possibly
    updated) node.  The input tree is mutated in place for child slots;
    callers who need the original should :func:`copy_node` first.
    """
    if isinstance(node, N.FieldAccess):
        node.base = rewrite(node.base, fn)
    elif isinstance(node, N.Setf):
        if isinstance(node.place, N.FieldPlace):
            node.place.base = rewrite(node.place.base, fn)
        node.value = rewrite(node.value, fn)
    elif isinstance(node, N.If):
        node.test = rewrite(node.test, fn)
        node.then = rewrite(node.then, fn)
        if node.els is not None:
            node.els = rewrite(node.els, fn)
    elif isinstance(node, N.Progn):
        node.body = [rewrite(n, fn) for n in node.body]
    elif isinstance(node, N.Let):
        node.bindings = [(name, rewrite(init, fn)) for name, init in node.bindings]
        node.body = [rewrite(n, fn) for n in node.body]
    elif isinstance(node, N.While):
        node.test = rewrite(node.test, fn)
        node.body = [rewrite(n, fn) for n in node.body]
    elif isinstance(node, (N.And, N.Or)):
        node.args = [rewrite(n, fn) for n in node.args]
    elif isinstance(node, N.Call):
        node.args = [rewrite(n, fn) for n in node.args]
    elif isinstance(node, N.Lambda):
        node.body = [rewrite(n, fn) for n in node.body]
    elif isinstance(node, N.Spawn):
        new_call = rewrite(node.call, fn)
        if isinstance(new_call, N.Call):
            node.call = new_call
    elif isinstance(node, N.FutureExpr):
        node.expr = rewrite(node.expr, fn)
    replacement = fn(node)
    return replacement if replacement is not None else node


def count_nodes(func: N.FuncDef) -> int:
    return sum(1 for _ in func.walk())
