"""IR node classes.

Nodes are small mutable objects with integer ids (unique per process) so
analyses can key maps by node.  Each carries ``source``, the original
S-expression it was lowered from, for error messages and faithful
unparsing.

Design notes:

* ``FieldAccess`` makes accessor paths *explicit*: ``(cadr l)`` lowers to
  ``FieldAccess(Var(l), ('cdr', 'car'))`` — fields in application order.
  The §2 conflict analysis is a computation over these words.
* ``Setf`` writes through a ``Place``; ``FieldPlace`` mirrors
  ``FieldAccess`` (all but the last field are reads, the last is the
  written location).
* ``Spawn`` and ``FutureExpr`` never come from user source; transforms
  introduce them (Figure 7's process-spawning recursive call).
"""

from __future__ import annotations

import itertools
from typing import Any, Iterator, Optional, Sequence

from repro.sexpr.datum import Symbol

_node_ids = itertools.count(1)


class Node:
    """Base IR node."""

    __slots__ = ("node_id", "source")

    def __init__(self, source: Any = None):
        self.node_id = next(_node_ids)
        self.source = source

    def children(self) -> Sequence["Node"]:
        """Direct sub-nodes in evaluation order.

        Returns a sequence (tuple or list), not a generator: walks touch
        every node and the per-node generator frame was measurable.  The
        returned sequence may alias internal state — treat it read-only.
        """
        return ()

    def walk(self) -> Iterator["Node"]:
        """Pre-order traversal of this subtree.

        Materialized eagerly into a list: a tight append loop beats a
        generator resumption per node, walks dominate analysis time, and
        IR trees are small enough that early-exiting callers lose almost
        nothing to the full traversal.
        """
        out: list["Node"] = []
        append = out.append
        stack = [self]
        pop = stack.pop
        while stack:
            node = pop()
            append(node)
            children = node.children()
            if children:
                stack.extend(reversed(children))
        return iter(out)

    def __repr__(self) -> str:
        from repro.ir.unparse import unparse
        from repro.sexpr.printer import write_str

        try:
            return f"<{type(self).__name__}#{self.node_id} {write_str(unparse(self), max_depth=4)}>"
        except Exception:
            return f"<{type(self).__name__}#{self.node_id}>"


class Const(Node):
    """Self-evaluating constant (number, string, nil, t)."""

    __slots__ = ("value",)

    def __init__(self, value: Any, source: Any = None):
        super().__init__(source)
        self.value = value


class Quote(Node):
    """A quoted datum."""

    __slots__ = ("datum",)

    def __init__(self, datum: Any, source: Any = None):
        super().__init__(source)
        self.datum = datum


class Var(Node):
    """Variable reference."""

    __slots__ = ("name",)

    def __init__(self, name: Symbol, source: Any = None):
        super().__init__(source)
        self.name = name


class FunctionRef(Node):
    """``#'name`` — reference to a function."""

    __slots__ = ("name",)

    def __init__(self, name: Symbol, source: Any = None):
        super().__init__(source)
        self.name = name


class FieldAccess(Node):
    """Read through an accessor chain: base.f1.f2...fk.

    ``fields`` are in application order (first applied first), so
    ``(cadr l)`` is ``fields=('cdr','car')``.

    ``accessor_names`` (parallel to ``fields``) remembers the Lisp
    accessor function for each step so unparsing regenerates source:
    ``'cdr'`` for cons fields, ``'node-next'`` for struct fields.
    """

    __slots__ = ("base", "fields", "accessor_names")

    def __init__(
        self,
        base: Node,
        fields: tuple[str, ...],
        source: Any = None,
        accessor_names: Optional[tuple[str, ...]] = None,
    ):
        super().__init__(source)
        self.base = base
        self.fields = fields
        self.accessor_names = accessor_names if accessor_names is not None else fields

    def children(self) -> Sequence[Node]:
        return (self.base,)


class Place:
    """Base class for setf places."""

    __slots__ = ()


class VarPlace(Place):
    __slots__ = ("name",)

    def __init__(self, name: Symbol):
        self.name = name

    def __repr__(self) -> str:
        return f"VarPlace({self.name})"


class FieldPlace(Place):
    """A heap location: base.f1...f(k-1) read, then field fk written."""

    __slots__ = ("base", "fields", "accessor_names")

    def __init__(
        self,
        base: Node,
        fields: tuple[str, ...],
        accessor_names: Optional[tuple[str, ...]] = None,
    ):
        self.base = base
        self.fields = fields
        self.accessor_names = accessor_names if accessor_names is not None else fields

    def __repr__(self) -> str:
        return f"FieldPlace({self.base!r}, {self.fields})"


class Setf(Node):
    """Assignment through a place.  ``setq`` lowers to a VarPlace setf."""

    __slots__ = ("place", "value")

    def __init__(self, place: Place, value: Node, source: Any = None):
        super().__init__(source)
        self.place = place
        self.value = value

    def children(self) -> Sequence[Node]:
        place = self.place
        if isinstance(place, FieldPlace):
            return (place.base, self.value)
        return (self.value,)


# Keep the name Setq importable for readability at call sites that build
# variable assignments; it is the same node shape.
def Setq(name: Symbol, value: Node, source: Any = None) -> Setf:
    return Setf(VarPlace(name), value, source)


class If(Node):
    __slots__ = ("test", "then", "els")

    def __init__(self, test: Node, then: Node, els: Optional[Node], source: Any = None):
        super().__init__(source)
        self.test = test
        self.then = then
        self.els = els

    def children(self) -> Sequence[Node]:
        if self.els is not None:
            return (self.test, self.then, self.els)
        return (self.test, self.then)


class Progn(Node):
    __slots__ = ("body",)

    def __init__(self, body: list[Node], source: Any = None):
        super().__init__(source)
        self.body = body

    def children(self) -> Sequence[Node]:
        return self.body


class Let(Node):
    """``let`` / ``let*`` (``sequential`` distinguishes them)."""

    __slots__ = ("bindings", "body", "sequential")

    def __init__(
        self,
        bindings: list[tuple[Symbol, Node]],
        body: list[Node],
        sequential: bool = False,
        source: Any = None,
    ):
        super().__init__(source)
        self.bindings = bindings
        self.body = body
        self.sequential = sequential

    def children(self) -> Sequence[Node]:
        return [init for _name, init in self.bindings] + self.body

    def bound_names(self) -> set[Symbol]:
        return {name for name, _ in self.bindings}


class While(Node):
    __slots__ = ("test", "body")

    def __init__(self, test: Node, body: list[Node], source: Any = None):
        super().__init__(source)
        self.test = test
        self.body = body

    def children(self) -> Sequence[Node]:
        return [self.test, *self.body]


class And(Node):
    __slots__ = ("args",)

    def __init__(self, args: list[Node], source: Any = None):
        super().__init__(source)
        self.args = args

    def children(self) -> Sequence[Node]:
        return self.args


class Or(Node):
    __slots__ = ("args",)

    def __init__(self, args: list[Node], source: Any = None):
        super().__init__(source)
        self.args = args

    def children(self) -> Sequence[Node]:
        return self.args


class Call(Node):
    """Named function call.  ``is_self_call`` is stamped by recursion
    analysis when the callee is the enclosing function."""

    __slots__ = ("fn", "args", "is_self_call", "callsite_index")

    def __init__(self, fn: Symbol, args: list[Node], source: Any = None):
        super().__init__(source)
        self.fn = fn
        self.args = args
        self.is_self_call = False
        self.callsite_index: Optional[int] = None

    def children(self) -> Sequence[Node]:
        return self.args


class Lambda(Node):
    __slots__ = ("params", "body")

    def __init__(self, params: list[Symbol], body: list[Node], source: Any = None):
        super().__init__(source)
        self.params = params
        self.body = body

    def children(self) -> Sequence[Node]:
        return self.body


class Spawn(Node):
    """Asynchronous call: the transformed recursive invocation (Fig 7)."""

    __slots__ = ("call",)

    def __init__(self, call: Call, source: Any = None):
        super().__init__(source)
        self.call = call

    def children(self) -> Sequence[Node]:
        return (self.call,)


class FutureExpr(Node):
    """``(future expr)`` — spawn with a future for the result."""

    __slots__ = ("expr",)

    def __init__(self, expr: Node, source: Any = None):
        super().__init__(source)
        self.expr = expr

    def children(self) -> Sequence[Node]:
        return (self.expr,)


class FuncDef:
    """A lowered function definition."""

    __slots__ = ("name", "params", "body", "source")

    def __init__(self, name: Symbol, params: list[Symbol], body: list[Node], source: Any = None):
        self.name = name
        self.params = params
        self.body = body
        self.source = source

    def walk(self) -> Iterator[Node]:
        out: list[Node] = []
        append = out.append
        stack = list(self.body)
        stack.reverse()
        pop = stack.pop
        while stack:
            node = pop()
            append(node)
            children = node.children()
            if children:
                stack.extend(reversed(children))
        return iter(out)

    def self_calls(self) -> list[Call]:
        return [n for n in self.walk() if isinstance(n, Call) and n.is_self_call]

    def __repr__(self) -> str:
        return f"<FuncDef {self.name} ({' '.join(p.name for p in self.params)})>"
