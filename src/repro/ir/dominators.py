"""Dominator analysis over the expression-level CFG.

Cooper-Harvey-Kennedy iterative algorithm over *immediate* dominators:
walking two RPO-numbered idom chains to their meet point replaces the
full-set intersections of the textbook dataflow (which allocated O(V)
sets per vertex per pass).  The full sets — ``dom(n)`` is the set of
vertices on every ENTRY→n path — are materialized once at the end by
unioning down the idom tree in RPO order.  Head/tail partitioning
(paper §3.1) asks: is this node dominated by a recursive-call vertex?
"""

from __future__ import annotations

from typing import Iterable

from repro.ir.cfg import CFG, ENTRY


def compute_dominators(cfg: CFG) -> dict[object, set[object]]:
    """Map each reachable vertex to its dominator set (including itself)."""
    order = cfg.reverse_postorder()
    reachable = _reachable(cfg)
    vertices = [v for v in order if v in reachable]
    rpo = {v: i for i, v in enumerate(vertices)}
    idom: dict[object, object] = {ENTRY: ENTRY}

    def intersect(a: object, b: object) -> object:
        while a is not b and a != b:
            while rpo[a] > rpo[b]:
                a = idom[a]
            while rpo[b] > rpo[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for v in vertices:
            if v == ENTRY:
                continue
            # RPO guarantees at least one predecessor is already
            # processed the first time we reach v.
            new: object = None
            for p in cfg.preds.get(v, ()):
                if p in idom:
                    new = p if new is None else intersect(new, p)
            if new is not None and idom.get(v) != new:
                idom[v] = new
                changed = True

    # Materialize the sets: idom[v] precedes v in RPO, so dom[idom[v]]
    # is complete by the time v is visited.
    dom: dict[object, set[object]] = {ENTRY: {ENTRY}}
    for v in vertices:
        if v == ENTRY:
            continue
        parent = idom.get(v)
        if parent is None:
            dom[v] = {v}
        else:
            parent_dom = dom[parent]
            full = set(parent_dom)
            full.add(v)
            dom[v] = full
    return dom


def _reachable(cfg: CFG) -> set[object]:
    seen = {ENTRY}
    stack = [ENTRY]
    while stack:
        v = stack.pop()
        for s in cfg.succs.get(v, ()):
            if s not in seen:
                seen.add(s)
                stack.append(s)
    return seen


def dominated_by_any(
    dom: dict[object, set[object]], vertices: Iterable[object], targets: Iterable[object]
) -> set[object]:
    """Vertices whose dominator set intersects ``targets`` (excluding the
    case where the vertex *is* the only such target itself)."""
    target_set = set(targets)
    out: set[object] = set()
    for v in vertices:
        doms = dom.get(v)
        if doms is None:
            continue
        hit = doms & target_set
        if hit - {v}:
            out.add(v)
    return out
