"""Dominator analysis over the expression-level CFG.

Classic iterative dataflow (Cooper-Harvey-Kennedy style, but with full
dominator *sets* since our CFGs are small): ``dom(n)`` is the set of
vertices on every ENTRY→n path.  Head/tail partitioning (paper §3.1)
asks: is this node dominated by a recursive-call vertex?
"""

from __future__ import annotations

from typing import Iterable

from repro.ir.cfg import CFG, ENTRY


def compute_dominators(cfg: CFG) -> dict[object, set[object]]:
    """Map each reachable vertex to its dominator set (including itself)."""
    order = cfg.reverse_postorder()
    reachable = _reachable(cfg)
    vertices = [v for v in order if v in reachable]
    all_vs = set(vertices)
    dom: dict[object, set[object]] = {v: set(all_vs) for v in vertices}
    dom[ENTRY] = {ENTRY}
    changed = True
    while changed:
        changed = False
        for v in vertices:
            if v == ENTRY:
                continue
            preds = [p for p in cfg.preds.get(v, ()) if p in reachable]
            if preds:
                new = set(dom[preds[0]])
                for p in preds[1:]:
                    new &= dom[p]
            else:
                new = set()
            new.add(v)
            if new != dom[v]:
                dom[v] = new
                changed = True
    return dom


def _reachable(cfg: CFG) -> set[object]:
    seen = {ENTRY}
    stack = [ENTRY]
    while stack:
        v = stack.pop()
        for s in cfg.succs.get(v, ()):
            if s not in seen:
                seen.add(s)
                stack.append(s)
    return seen


def dominated_by_any(
    dom: dict[object, set[object]], vertices: Iterable[object], targets: Iterable[object]
) -> set[object]:
    """Vertices whose dominator set intersects ``targets`` (excluding the
    case where the vertex *is* the only such target itself)."""
    target_set = set(targets)
    out: set[object] = set()
    for v in vertices:
        doms = dom.get(v)
        if doms is None:
            continue
        hit = doms & target_set
        if hit - {v}:
            out.add(v)
    return out
