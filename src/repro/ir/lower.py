"""Lowering: macroexpanded S-expressions → IR.

The lowering pass is bound to an :class:`~repro.lisp.interpreter.Interpreter`
for three things: macro expansion, the struct-accessor table (so
``(node-next x)`` becomes a :class:`FieldAccess` with field ``next``),
and gensyms for loop rewriting.

``cond``, ``when``, ``unless``, and ``dolist`` are normalized away here
(to ``if``/``let``/``while``), so downstream analyses see a small core.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.ir import nodes as N
from repro.lisp.interpreter import Interpreter, cxr_ops, _is_cxr
from repro.sexpr.datum import Cons, Symbol, list_to_pylist


class LowerError(Exception):
    def __init__(self, message: str, form: Any = None):
        if form is not None:
            from repro.sexpr.printer import write_str

            message = f"{message}: {write_str(form, max_depth=5)}"
        super().__init__(message)
        self.form = form


class Lowerer:
    def __init__(self, interp: Interpreter):
        self.interp = interp

    # -- entry points -----------------------------------------------------

    def lower_function(self, defun_form: Any) -> N.FuncDef:
        """Lower a ``(defun name (params) body...)`` form."""
        form = self.interp.macroexpand_all(defun_form)
        parts = list_to_pylist(form)
        if len(parts) < 3 or not isinstance(parts[0], Symbol) or parts[0].name != "defun":
            raise LowerError("not a defun form", defun_form)
        name = parts[1]
        if not isinstance(name, Symbol):
            raise LowerError("defun name must be a symbol", defun_form)
        params = list_to_pylist(parts[2]) if parts[2] is not None else []
        for p in params:
            if not isinstance(p, Symbol):
                raise LowerError("parameter must be a symbol", defun_form)
        body = [self.lower(f) for f in parts[3:] if not _is_declare(f)]
        func = N.FuncDef(name, params, body, source=defun_form)
        self._mark_self_calls(func)
        return func

    def lower(self, form: Any) -> N.Node:
        """Lower one expression form."""
        form = self.interp.macroexpand_all(form)
        return self._lower(form)

    # -- dispatch ----------------------------------------------------------

    def _lower(self, form: Any) -> N.Node:
        if isinstance(form, Symbol):
            return N.Var(form, source=form)
        if not isinstance(form, Cons):
            return N.Const(form, source=form)
        head = form.car
        if not isinstance(head, Symbol):
            if isinstance(head, Cons) and isinstance(head.car, Symbol) and head.car.name == "lambda":
                # ((lambda ...) args) — lower as a call through funcall.
                fn = self._lower(head)
                args = [self._lower(a) for a in list_to_pylist(form.cdr)]
                call = N.Call(self.interp.intern("funcall"), [fn] + args, source=form)
                return call
            raise LowerError("illegal function position", form)

        handler = getattr(self, f"_lower_{head.name.replace('*', '_star').replace('-', '_')}", None)
        special = _LOWER_DISPATCH.get(head.name)
        if special is not None:
            return special(self, form)
        return self._lower_call(form)

    def _parts(self, form: Cons) -> list[Any]:
        return list_to_pylist(form.cdr)

    # -- special forms -----------------------------------------------------

    def _lower_quote(self, form: Cons) -> N.Node:
        (datum,) = self._parts(form)
        return N.Quote(datum, source=form)

    def _lower_function(self, form: Cons) -> N.Node:
        (target,) = self._parts(form)
        if isinstance(target, Symbol):
            return N.FunctionRef(target, source=form)
        if isinstance(target, Cons):
            return self._lower(target)
        raise LowerError("bad function form", form)

    def _lower_if(self, form: Cons) -> N.Node:
        parts = self._parts(form)
        if len(parts) not in (2, 3):
            raise LowerError("if takes 2 or 3 arguments", form)
        els = self._lower(parts[2]) if len(parts) == 3 else None
        return N.If(self._lower(parts[0]), self._lower(parts[1]), els, source=form)

    def _lower_cond(self, form: Cons) -> N.Node:
        clauses = self._parts(form)
        result: Optional[N.Node] = None
        for clause in reversed(clauses):
            if not isinstance(clause, Cons):
                raise LowerError("malformed cond clause", form)
            parts = list_to_pylist(clause)
            test_form = parts[0]
            is_t = test_form is True or (isinstance(test_form, Symbol) and test_form.name == "t")
            if is_t:
                body = [self._lower(f) for f in parts[1:]]
                result = _body_node(body, form) if body else N.Const(True, source=form)
                continue
            test = self._lower(test_form)
            if len(parts) == 1:
                # (test) clause: value is the test itself.
                tmp = self.interp.symbols.gensym("cond")
                result = N.Let(
                    [(tmp, test)],
                    [N.If(N.Var(tmp), N.Var(tmp), result, source=form)],
                    source=form,
                )
            else:
                body = [self._lower(f) for f in parts[1:]]
                result = N.If(test, _body_node(body, form), result, source=form)
        return result if result is not None else N.Const(None, source=form)

    def _lower_when(self, form: Cons) -> N.Node:
        parts = self._parts(form)
        if not parts:
            raise LowerError("when needs a test", form)
        body = [self._lower(f) for f in parts[1:]]
        return N.If(self._lower(parts[0]), _body_node(body, form), None, source=form)

    def _lower_unless(self, form: Cons) -> N.Node:
        parts = self._parts(form)
        if not parts:
            raise LowerError("unless needs a test", form)
        body = [self._lower(f) for f in parts[1:]]
        not_sym = self.interp.intern("not")
        return N.If(
            N.Call(not_sym, [self._lower(parts[0])], source=form),
            _body_node(body, form),
            None,
            source=form,
        )

    def _lower_progn(self, form: Cons) -> N.Node:
        body = [self._lower(f) for f in self._parts(form)]
        return N.Progn(body, source=form)

    def _lower_let(self, form: Cons, sequential: bool = False) -> N.Node:
        parts = self._parts(form)
        if not parts:
            raise LowerError("let needs bindings", form)
        raw = list_to_pylist(parts[0]) if parts[0] is not None else []
        bindings: list[tuple[Symbol, N.Node]] = []
        for b in raw:
            if isinstance(b, Symbol):
                bindings.append((b, N.Const(None, source=b)))
            elif isinstance(b, Cons):
                pair = list_to_pylist(b)
                if len(pair) == 1:
                    bindings.append((pair[0], N.Const(None, source=b)))
                elif len(pair) == 2 and isinstance(pair[0], Symbol):
                    bindings.append((pair[0], self._lower(pair[1])))
                else:
                    raise LowerError("malformed let binding", form)
            else:
                raise LowerError("malformed let binding", form)
        body = [self._lower(f) for f in parts[1:] if not _is_declare(f)]
        return N.Let(bindings, body, sequential=sequential, source=form)

    def _lower_let_star(self, form: Cons) -> N.Node:
        return self._lower_let(form, sequential=True)

    def _lower_setq(self, form: Cons) -> N.Node:
        parts = self._parts(form)
        if not parts or len(parts) % 2 != 0:
            raise LowerError("setq needs name/value pairs", form)
        assigns: list[N.Node] = []
        for i in range(0, len(parts), 2):
            name = parts[i]
            if not isinstance(name, Symbol):
                raise LowerError("setq name must be a symbol", form)
            assigns.append(N.Setf(N.VarPlace(name), self._lower(parts[i + 1]), source=form))
        return assigns[0] if len(assigns) == 1 else N.Progn(assigns, source=form)

    def _lower_setf(self, form: Cons) -> N.Node:
        parts = self._parts(form)
        if not parts or len(parts) % 2 != 0:
            raise LowerError("setf needs place/value pairs", form)
        assigns: list[N.Node] = []
        for i in range(0, len(parts), 2):
            assigns.append(self._lower_setf_one(parts[i], parts[i + 1], form))
        return assigns[0] if len(assigns) == 1 else N.Progn(assigns, source=form)

    def _lower_setf_one(self, place: Any, value_form: Any, form: Any) -> N.Node:
        value = self._lower(value_form)
        if isinstance(place, Symbol):
            return N.Setf(N.VarPlace(place), value, source=form)
        if not (isinstance(place, Cons) and isinstance(place.car, Symbol)):
            raise LowerError("unsupported setf place", form)
        op = place.car.name
        place_args = list_to_pylist(place.cdr)
        if op in ("car", "cdr") or _is_cxr(op):
            if len(place_args) != 1:
                raise LowerError(f"({op} ...) place takes one subform", form)
            base = self._lower(place_args[0])
            fields = tuple(cxr_ops(op)) if _is_cxr(op) else (op,)
            base, fields, names = self._merge_access(base, fields, fields)
            return N.Setf(N.FieldPlace(base, fields, names), value, source=form)
        if op in self.interp.struct_accessors:
            if len(place_args) != 1:
                raise LowerError(f"({op} ...) place takes one subform", form)
            _stype, field = self.interp.struct_accessors[op]
            base = self._lower(place_args[0])
            base, fields, names = self._merge_access(base, (field,), (op,))
            return N.Setf(N.FieldPlace(base, fields, names), value, source=form)
        if op == "aref":
            if len(place_args) != 2:
                raise LowerError("(aref array index) place takes two subforms", form)
            vec = self._lower(place_args[0])
            index = self._lower(place_args[1])
            return N.Call(self.interp.intern("aset"), [vec, index, value], source=form)
        if op == "gethash":
            if len(place_args) != 2:
                raise LowerError("(gethash key table) place takes two subforms", form)
            key = self._lower(place_args[0])
            table = self._lower(place_args[1])
            return N.Call(self.interp.intern("puthash"), [key, table, value], source=form)
        raise LowerError(f"unsupported setf place ({op} ...)", form)

    def _lower_while(self, form: Cons) -> N.Node:
        parts = self._parts(form)
        if not parts:
            raise LowerError("while needs a test", form)
        return N.While(self._lower(parts[0]), [self._lower(f) for f in parts[1:]], source=form)

    def _lower_dolist(self, form: Cons) -> N.Node:
        parts = self._parts(form)
        if not parts or not isinstance(parts[0], Cons):
            raise LowerError("dolist needs (var list-form)", form)
        spec = list_to_pylist(parts[0])
        if len(spec) not in (2, 3) or not isinstance(spec[0], Symbol):
            raise LowerError("dolist needs (var list-form [result])", form)
        var = spec[0]
        cursor = self.interp.symbols.gensym("dolist")
        lst = self._lower(spec[1])
        body = [self._lower(f) for f in parts[1:]]
        # (let ((cursor lst)) (while cursor (let ((var (car cursor))) body...)
        #                                   (setq cursor (cdr cursor))) [result])
        loop = N.While(
            N.Var(cursor),
            [
                N.Let(
                    [(var, N.FieldAccess(N.Var(cursor), ("car",), source=form))],
                    body,
                    source=form,
                ),
                N.Setf(
                    N.VarPlace(cursor),
                    N.FieldAccess(N.Var(cursor), ("cdr",), source=form),
                    source=form,
                ),
            ],
            source=form,
        )
        outer_body: list[N.Node] = [loop]
        if len(spec) == 3:
            outer_body.append(self._lower(spec[2]))
        return N.Let([(cursor, lst)], outer_body, source=form)

    def _lower_and(self, form: Cons) -> N.Node:
        return N.And([self._lower(f) for f in self._parts(form)], source=form)

    def _lower_or(self, form: Cons) -> N.Node:
        return N.Or([self._lower(f) for f in self._parts(form)], source=form)

    def _lower_lambda(self, form: Cons) -> N.Node:
        parts = self._parts(form)
        if not parts:
            raise LowerError("lambda needs a lambda list", form)
        params = list_to_pylist(parts[0]) if parts[0] is not None else []
        body = [self._lower(f) for f in parts[1:] if not _is_declare(f)]
        return N.Lambda(params, body, source=form)

    def _lower_spawn(self, form: Cons) -> N.Node:
        parts = self._parts(form)
        if len(parts) != 1 or not isinstance(parts[0], Cons):
            raise LowerError("spawn takes one call form", form)
        inner = self._lower(parts[0])
        if not isinstance(inner, N.Call):
            raise LowerError("spawn body must be a simple call", form)
        return N.Spawn(inner, source=form)

    def _lower_future(self, form: Cons) -> N.Node:
        parts = self._parts(form)
        if len(parts) != 1:
            raise LowerError("future takes one expression", form)
        return N.FutureExpr(self._lower(parts[0]), source=form)

    # -- calls and accessors -------------------------------------------------

    def _merge_access(
        self, base: N.Node, fields: tuple[str, ...], names: tuple[str, ...]
    ) -> tuple[N.Node, tuple[str, ...], tuple[str, ...]]:
        """Flatten FieldAccess-of-FieldAccess into one accessor word."""
        if isinstance(base, N.FieldAccess):
            return (
                base.base,
                base.fields + fields,
                base.accessor_names + names,
            )
        return base, fields, names

    def _lower_call(self, form: Cons) -> N.Node:
        head: Symbol = form.car
        args = [self._lower(a) for a in self._parts(form)]
        name = head.name
        if (name in ("car", "cdr") or _is_cxr(name)) and len(args) == 1:
            fields = tuple(cxr_ops(name)) if _is_cxr(name) else (name,)
            base, fields, acc = self._merge_access(args[0], fields, fields)
            return N.FieldAccess(base, fields, source=form, accessor_names=acc)
        if name in self.interp.struct_accessors and len(args) == 1:
            _stype, field = self.interp.struct_accessors[name]
            base, fields, acc = self._merge_access(args[0], (field,), (name,))
            return N.FieldAccess(base, fields, source=form, accessor_names=acc)
        return N.Call(head, args, source=form)

    # -- post passes -----------------------------------------------------------

    def _mark_self_calls(self, func: N.FuncDef) -> None:
        index = 0
        for node in func.walk():
            if isinstance(node, N.Call) and node.fn is func.name:
                node.is_self_call = True
                node.callsite_index = index
                index += 1
            elif isinstance(node, N.Spawn) and node.call.fn is func.name:
                node.call.is_self_call = True
                node.call.callsite_index = index
                index += 1


def _body_node(body: list[N.Node], form: Any) -> N.Node:
    if len(body) == 1:
        return body[0]
    return N.Progn(body, source=form)


def _is_declare(form: Any) -> bool:
    return (
        isinstance(form, Cons)
        and isinstance(form.car, Symbol)
        and form.car.name == "declare"
    )


_LOWER_DISPATCH = {
    "quote": Lowerer._lower_quote,
    "function": Lowerer._lower_function,
    "if": Lowerer._lower_if,
    "cond": Lowerer._lower_cond,
    "when": Lowerer._lower_when,
    "unless": Lowerer._lower_unless,
    "progn": Lowerer._lower_progn,
    "let": Lowerer._lower_let,
    "let*": Lowerer._lower_let_star,
    "setq": Lowerer._lower_setq,
    "setf": Lowerer._lower_setf,
    "while": Lowerer._lower_while,
    "dolist": Lowerer._lower_dolist,
    "and": Lowerer._lower_and,
    "or": Lowerer._lower_or,
    "lambda": Lowerer._lower_lambda,
    "spawn": Lowerer._lower_spawn,
    "future": Lowerer._lower_future,
}


def lower_function(interp: Interpreter, defun_form: Any) -> N.FuncDef:
    """Lower a defun form (or the source of an already-defined function)."""
    if isinstance(defun_form, Symbol):
        source = interp.source_forms.get(defun_form)
        if source is None:
            raise LowerError(f"no source recorded for function {defun_form}")
        defun_form = source
    return Lowerer(interp).lower_function(defun_form)


def lower_expr(interp: Interpreter, form: Any) -> N.Node:
    return Lowerer(interp).lower(form)
