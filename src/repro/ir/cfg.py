"""Control-flow graph over IR nodes.

The CFG is at *expression* granularity: every IR node is a CFG vertex,
with edges in evaluation order and branches at ``if``/``while``/``and``/
``or``.  Two synthetic vertices ``ENTRY`` and ``EXIT`` bracket the
function body.

This granularity makes the paper's head/tail definition (§3.1) direct:
a node is in the tail iff every path from ENTRY to it passes through a
recursive-call vertex.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.ir import nodes as N

ENTRY = "entry"
EXIT = "exit"


class CFG:
    """preds/succs over node ids, plus the id→node map."""

    def __init__(self) -> None:
        self.succs: dict[object, set[object]] = {ENTRY: set(), EXIT: set()}
        self.preds: dict[object, set[object]] = {ENTRY: set(), EXIT: set()}
        self.nodes: dict[int, N.Node] = {}

    def add_node(self, node: N.Node) -> int:
        self.nodes[node.node_id] = node
        self.succs.setdefault(node.node_id, set())
        self.preds.setdefault(node.node_id, set())
        return node.node_id

    def add_edge(self, src: object, dst: object) -> None:
        self.succs.setdefault(src, set()).add(dst)
        self.preds.setdefault(dst, set()).add(src)

    def vertices(self) -> list[object]:
        return list(self.succs.keys())

    def reverse_postorder(self) -> list[object]:
        """RPO from ENTRY (unreachable vertices appended at the end)."""
        visited: set[object] = set()
        order: list[object] = []

        def dfs(v: object) -> None:
            stack = [(v, iter(sorted(self.succs.get(v, ()), key=str)))]
            visited.add(v)
            while stack:
                vertex, it = stack[-1]
                advanced = False
                for succ in it:
                    if succ not in visited:
                        visited.add(succ)
                        stack.append((succ, iter(sorted(self.succs.get(succ, ()), key=str))))
                        advanced = True
                        break
                if not advanced:
                    order.append(vertex)
                    stack.pop()

        dfs(ENTRY)
        order.reverse()
        for v in self.vertices():
            if v not in visited:
                order.append(v)
        return order


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()

    def build(self, body: list[N.Node]) -> CFG:
        lasts = self._sequence(body, {ENTRY})
        for last in lasts:
            self.cfg.add_edge(last, EXIT)
        return self.cfg

    def _sequence(self, body: Iterable[N.Node], preds: set[object]) -> set[object]:
        current = set(preds)
        for node in body:
            current = self._node(node, current)
        return current

    def _link(self, preds: set[object], vertex: object) -> None:
        for p in preds:
            self.cfg.add_edge(p, vertex)

    def _node(self, node: N.Node, preds: set[object]) -> set[object]:
        """Wire ``node``'s subgraph after ``preds``; return its exits."""
        nid = self.cfg.add_node(node)

        if isinstance(node, (N.Const, N.Quote, N.Var, N.FunctionRef, N.Lambda, N.FutureExpr)):
            # Atomic in the parent's flow (lambda/future bodies execute
            # elsewhere).
            self._link(preds, nid)
            return {nid}

        if isinstance(node, N.FieldAccess):
            exits = self._node(node.base, preds)
            self._link(exits, nid)
            return {nid}

        if isinstance(node, N.Setf):
            current = preds
            if isinstance(node.place, N.FieldPlace):
                current = self._node(node.place.base, current)
            current = self._node(node.value, current)
            self._link(current, nid)
            return {nid}

        if isinstance(node, N.If):
            test_exits = self._node(node.test, preds)
            self._link(test_exits, nid)
            then_exits = self._node(node.then, {nid})
            if node.els is not None:
                else_exits = self._node(node.els, {nid})
                return then_exits | else_exits
            return then_exits | {nid}

        if isinstance(node, N.Progn):
            if not node.body:
                self._link(preds, nid)
                return {nid}
            exits = self._sequence(node.body, preds)
            self._link(exits, nid)
            return {nid}

        if isinstance(node, N.Let):
            current = preds
            for _name, init in node.bindings:
                current = self._node(init, current)
            self._link(current, nid)
            if not node.body:
                return {nid}
            return self._sequence(node.body, {nid})

        if isinstance(node, N.While):
            # nid is the loop-branch point, evaluated after the test.
            test_exits = self._node(node.test, preds)
            self._link(test_exits, nid)
            body_exits = self._sequence(node.body, {nid})
            # Loop back: body exits re-evaluate the test.
            for e in body_exits:
                for t in _first_vertices(self, node.test):
                    self.cfg.add_edge(e, t)
            return {nid}

        if isinstance(node, (N.And, N.Or)):
            exits: set[object] = set()
            current = preds
            for arg in node.args:
                arg_exits = self._node(arg, current)
                exits |= arg_exits  # short-circuit exit from every arg
                current = arg_exits
            self._link(exits if node.args else preds, nid)
            return {nid}

        if isinstance(node, N.Call):
            current = preds
            for arg in node.args:
                current = self._node(arg, current)
            self._link(current, nid)
            return {nid}

        if isinstance(node, N.Spawn):
            # Arguments evaluate in the parent; the call itself is the
            # spawn point (the callee's body is elsewhere).
            current = preds
            for arg in node.call.args:
                current = self._node(arg, current)
            call_id = self.cfg.add_node(node.call)
            self._link(current, call_id)
            self._link({call_id}, nid)
            return {nid}

        raise TypeError(f"cfg: unknown node {node!r}")


def _first_vertices(builder: _Builder, node: N.Node) -> set[object]:
    """The vertex where evaluation of ``node`` begins (for loop back edges).

    For compound nodes this is the entry of their first sub-computation;
    by construction every node subgraph was already added, so we descend
    the same way the builder wires preds.
    """
    current = node
    while True:
        if isinstance(current, (N.Const, N.Quote, N.Var, N.FunctionRef, N.Lambda, N.FutureExpr)):
            return {current.node_id}
        if isinstance(current, N.FieldAccess):
            current = current.base
            continue
        if isinstance(current, N.Setf):
            if isinstance(current.place, N.FieldPlace):
                current = current.place.base
            else:
                current = current.value
            continue
        if isinstance(current, N.If):
            current = current.test
            continue
        if isinstance(current, N.Progn):
            if current.body:
                current = current.body[0]
                continue
            return {current.node_id}
        if isinstance(current, N.Let):
            if current.bindings:
                current = current.bindings[0][1]
                continue
            return {current.node_id}
        if isinstance(current, N.While):
            current = current.test
            continue
        if isinstance(current, (N.And, N.Or)):
            if current.args:
                current = current.args[0]
                continue
            return {current.node_id}
        if isinstance(current, N.Call):
            if current.args:
                current = current.args[0]
                continue
            return {current.node_id}
        if isinstance(current, N.Spawn):
            if current.call.args:
                current = current.call.args[0]
                continue
            return {current.call.node_id}
        raise TypeError(f"cfg: unknown node {current!r}")


def build_cfg(func: N.FuncDef) -> CFG:
    """Build the expression-level CFG of ``func``'s body."""
    return _Builder().build(func.body)
