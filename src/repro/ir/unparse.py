"""Unparsing: IR → S-expressions.

The inverse of lowering, used by the code generator stage ("Curare is a
program transformer that can accommodate a wide variety of target
language features simply by changing its final, code-generator stage",
§4).  Round-tripping a lowered function yields an equivalent — not
textually identical — program: ``cond``/``when``/``dolist`` come back as
``if``/``let``/``while``.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.ir import nodes as N
from repro.sexpr.datum import Cons, Symbol, intern, lisp_list


def _sym(name: str) -> Symbol:
    return intern(name)


def _access_form(base_form: Any, fields: tuple[str, ...], names: tuple[str, ...]) -> Any:
    """Emit accessor applications over ``base_form``.

    Runs of car/cdr compress into c[ad]{2,4}r words; struct accessors
    emit by their recorded accessor names.
    """
    i = 0
    form = base_form
    while i < len(fields):
        if fields[i] in ("car", "cdr"):
            j = i
            while j < len(fields) and fields[j] in ("car", "cdr") and j - i < 4:
                j += 1
            letters = "".join("a" if f == "car" else "d" for f in fields[i:j])
            # Accessor words apply right-to-left: innermost field is the
            # rightmost letter.
            name = "c" + letters[::-1] + "r" if j - i > 1 else fields[i]
            form = lisp_list(_sym(name), form)
            i = j
        else:
            form = lisp_list(_sym(names[i]), form)
            i += 1
    return form


def unparse(node: N.Node) -> Any:
    """Convert one IR node back to an S-expression."""
    if isinstance(node, N.Const):
        value = node.value
        if isinstance(value, (int, float, str)) or value is None or value is True:
            return value
        return lisp_list(_sym("quote"), value)
    if isinstance(node, N.Quote):
        datum = node.datum
        if isinstance(datum, (int, float, str)) or datum is None or datum is True:
            return datum
        return lisp_list(_sym("quote"), datum)
    if isinstance(node, N.Var):
        return node.name
    if isinstance(node, N.FunctionRef):
        return lisp_list(_sym("function"), node.name)
    if isinstance(node, N.FieldAccess):
        return _access_form(unparse(node.base), node.fields, node.accessor_names)
    if isinstance(node, N.Setf):
        place = node.place
        value = unparse(node.value)
        if isinstance(place, N.VarPlace):
            return lisp_list(_sym("setq"), place.name, value)
        assert isinstance(place, N.FieldPlace)
        place_form = _access_form(unparse(place.base), place.fields, place.accessor_names)
        return lisp_list(_sym("setf"), place_form, value)
    if isinstance(node, N.If):
        if node.els is None:
            return lisp_list(_sym("if"), unparse(node.test), unparse(node.then))
        return lisp_list(
            _sym("if"), unparse(node.test), unparse(node.then), unparse(node.els)
        )
    if isinstance(node, N.Progn):
        return lisp_list(_sym("progn"), *[unparse(n) for n in node.body])
    if isinstance(node, N.Let):
        head = "let*" if node.sequential else "let"
        bindings = lisp_list(
            *[lisp_list(name, unparse(init)) for name, init in node.bindings]
        )
        return lisp_list(_sym(head), bindings, *[unparse(n) for n in node.body])
    if isinstance(node, N.While):
        return lisp_list(
            _sym("while"), unparse(node.test), *[unparse(n) for n in node.body]
        )
    if isinstance(node, N.And):
        return lisp_list(_sym("and"), *[unparse(n) for n in node.args])
    if isinstance(node, N.Or):
        return lisp_list(_sym("or"), *[unparse(n) for n in node.args])
    if isinstance(node, N.Call):
        return lisp_list(node.fn, *[unparse(a) for a in node.args])
    if isinstance(node, N.Lambda):
        return lisp_list(
            _sym("lambda"),
            lisp_list(*node.params),
            *[unparse(n) for n in node.body],
        )
    if isinstance(node, N.Spawn):
        return lisp_list(_sym("spawn"), unparse(node.call))
    if isinstance(node, N.FutureExpr):
        return lisp_list(_sym("future"), unparse(node.expr))
    raise TypeError(f"cannot unparse {node!r}")


def unparse_function(func: N.FuncDef) -> Any:
    """Emit a full ``(defun ...)`` form for a lowered function."""
    return lisp_list(
        _sym("defun"),
        func.name,
        lisp_list(*func.params),
        *[unparse(n) for n in func.body],
    )
