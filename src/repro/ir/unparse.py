"""Unparsing: IR → S-expressions.

The inverse of lowering, used by the code generator stage ("Curare is a
program transformer that can accommodate a wide variety of target
language features simply by changing its final, code-generator stage",
§4).  Round-tripping a lowered function yields an equivalent — not
textually identical — program: ``cond``/``when``/``dolist`` come back as
``if``/``let``/``while``.

Dispatch is a dict keyed on the concrete node class rather than an
``isinstance`` chain: calls — the most common node — sat at the bottom
of the old chain, and unparsing runs once per function per transform.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.ir import nodes as N
from repro.sexpr.datum import Symbol, intern, lisp_list

_QUOTE = intern("quote")
_FUNCTION = intern("function")
_SETQ = intern("setq")
_SETF = intern("setf")
_IF = intern("if")
_PROGN = intern("progn")
_LET = intern("let")
_LET_STAR = intern("let*")
_WHILE = intern("while")
_AND = intern("and")
_OR = intern("or")
_LAMBDA = intern("lambda")
_SPAWN = intern("spawn")
_FUTURE = intern("future")
_DEFUN = intern("defun")


def _sym(name: str) -> Symbol:
    return intern(name)


def _access_form(base_form: Any, fields: tuple[str, ...], names: tuple[str, ...]) -> Any:
    """Emit accessor applications over ``base_form``.

    Runs of car/cdr compress into c[ad]{2,4}r words; struct accessors
    emit by their recorded accessor names.
    """
    i = 0
    form = base_form
    while i < len(fields):
        if fields[i] in ("car", "cdr"):
            j = i
            while j < len(fields) and fields[j] in ("car", "cdr") and j - i < 4:
                j += 1
            letters = "".join("a" if f == "car" else "d" for f in fields[i:j])
            # Accessor words apply right-to-left: innermost field is the
            # rightmost letter.
            name = "c" + letters[::-1] + "r" if j - i > 1 else fields[i]
            form = lisp_list(_sym(name), form)
            i = j
        else:
            form = lisp_list(_sym(names[i]), form)
            i += 1
    return form


def _un_const(node: N.Const) -> Any:
    value = node.value
    if isinstance(value, (int, float, str)) or value is None or value is True:
        return value
    return lisp_list(_QUOTE, value)


def _un_quote(node: N.Quote) -> Any:
    datum = node.datum
    if isinstance(datum, (int, float, str)) or datum is None or datum is True:
        return datum
    return lisp_list(_QUOTE, datum)


def _un_var(node: N.Var) -> Any:
    return node.name


def _un_function_ref(node: N.FunctionRef) -> Any:
    return lisp_list(_FUNCTION, node.name)


def _un_field_access(node: N.FieldAccess) -> Any:
    return _access_form(unparse(node.base), node.fields, node.accessor_names)


def _un_setf(node: N.Setf) -> Any:
    place = node.place
    value = unparse(node.value)
    if isinstance(place, N.VarPlace):
        return lisp_list(_SETQ, place.name, value)
    assert isinstance(place, N.FieldPlace)
    place_form = _access_form(unparse(place.base), place.fields, place.accessor_names)
    return lisp_list(_SETF, place_form, value)


def _un_if(node: N.If) -> Any:
    if node.els is None:
        return lisp_list(_IF, unparse(node.test), unparse(node.then))
    return lisp_list(_IF, unparse(node.test), unparse(node.then), unparse(node.els))


def _un_progn(node: N.Progn) -> Any:
    return lisp_list(_PROGN, *[unparse(n) for n in node.body])


def _un_let(node: N.Let) -> Any:
    head = _LET_STAR if node.sequential else _LET
    bindings = lisp_list(
        *[lisp_list(name, unparse(init)) for name, init in node.bindings]
    )
    return lisp_list(head, bindings, *[unparse(n) for n in node.body])


def _un_while(node: N.While) -> Any:
    return lisp_list(_WHILE, unparse(node.test), *[unparse(n) for n in node.body])


def _un_and(node: N.And) -> Any:
    return lisp_list(_AND, *[unparse(n) for n in node.args])


def _un_or(node: N.Or) -> Any:
    return lisp_list(_OR, *[unparse(n) for n in node.args])


def _un_call(node: N.Call) -> Any:
    return lisp_list(node.fn, *[unparse(a) for a in node.args])


def _un_lambda(node: N.Lambda) -> Any:
    return lisp_list(
        _LAMBDA, lisp_list(*node.params), *[unparse(n) for n in node.body]
    )


def _un_spawn(node: N.Spawn) -> Any:
    return lisp_list(_SPAWN, unparse(node.call))


def _un_future(node: N.FutureExpr) -> Any:
    return lisp_list(_FUTURE, unparse(node.expr))


_DISPATCH: Dict[type, Callable[[Any], Any]] = {
    N.Call: _un_call,
    N.Var: _un_var,
    N.Const: _un_const,
    N.FieldAccess: _un_field_access,
    N.Setf: _un_setf,
    N.If: _un_if,
    N.Let: _un_let,
    N.While: _un_while,
    N.Progn: _un_progn,
    N.Quote: _un_quote,
    N.FunctionRef: _un_function_ref,
    N.And: _un_and,
    N.Or: _un_or,
    N.Lambda: _un_lambda,
    N.Spawn: _un_spawn,
    N.FutureExpr: _un_future,
}


def unparse(node: N.Node) -> Any:
    """Convert one IR node back to an S-expression."""
    handler = _DISPATCH.get(node.__class__)
    if handler is None:
        raise TypeError(f"cannot unparse {node!r}")
    return handler(node)


def unparse_function(func: N.FuncDef) -> Any:
    """Emit a full ``(defun ...)`` form for a lowered function."""
    return lisp_list(
        _DEFUN,
        func.name,
        lisp_list(*func.params),
        *[unparse(n) for n in func.body],
    )
