"""A respawning process-pool engine for the analysis service.

``repro serve --executor process`` hosts each engine call in a worker
*process* instead of a pool thread.  This buys three things the thread
executor cannot offer:

* **GIL escape** — CPU-bound analysis runs on real OS processes, so a
  multi-core host computes distinct requests genuinely in parallel;
* **crash isolation** — a worker that segfaults, is ``kill -9``'d, or
  calls ``os._exit`` produces a *typed* ``engine_error`` response for
  the request it was computing (never a dropped connection or a dead
  server), and the worker slot is respawned before the next call;
* **real cancellation** — when every waiter of a coalesced flight has
  abandoned it, the worker computing it is terminated mid-flight and
  respawned, instead of burning a core to completion.

The shape deliberately mirrors the sweep driver's worker farm
(:mod:`repro.scale.driver`): private per-worker task queues, a
kill→respawn discipline, and graceful sentinel shutdown.  One hazard
class is *designed away* here rather than narrowed: each worker posts
results to its **own** queue, so terminating a worker can only ever
corrupt state that dies with it — there is no shared result pipe for a
kill to poison (the known-hazard note in the driver's docstring).

Workers also watch for parent death: if the serving process is
``kill -9``'d, orphaned workers notice their parent pid changed within
a second and exit instead of leaking (the fleet smoke test kills whole
backends and must not strand children).

The worker executes :func:`repro.serve.server.engine_call` — the exact
dispatch the thread executor runs — so the two executors cannot drift
apart semantically, and responses stay byte-identical (modulo
``wall``) to the one-shot CLI whatever hosts the computation.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import api

#: How often a blocked caller re-checks for cancellation / worker death.
_POLL_S = 0.05
#: Worker-side idle poll; bounds how long an orphan outlives its parent.
_PARENT_POLL_S = 1.0


class WorkerCrash(api.EngineError):
    """The worker process died under a request.  A typed facade error
    (``code == "engine_error"``), so hosting layers render it as a
    structured response — crash isolation, not crash propagation."""


def _pool_worker_main(worker_id: int, task_q, result_q) -> None:
    """Worker loop: execute engine calls until the ``None`` sentinel.

    Every outcome — success or failure — is posted as a message; only
    a hard death (crash, kill, cancellation termination) leaves a call
    unanswered, and the parent detects that via ``is_alive``.
    """
    from repro.serve.server import engine_call

    parent = os.getppid()
    while True:
        try:
            item = task_q.get(timeout=_PARENT_POLL_S)
        except queue_mod.Empty:
            if os.getppid() != parent:
                return  # orphaned: the serving process is gone
            continue
        if item is None:
            return
        op, params = item
        try:
            result_q.put(("ok", engine_call(op, params)))
        except api.ApiError as err:
            result_q.put(("error", err.code, str(err)))
        except (TypeError, ValueError) as err:
            result_q.put(("error", "bad_request", f"bad params: {err}"))
        except Exception as err:  # noqa: BLE001 - a request must never
            result_q.put(("error", "internal",  # take the worker down
                          f"{type(err).__name__}: {err}"))


class _PoolWorker:
    """One worker slot: process + private task/result queues."""

    def __init__(self, ctx, worker_id: int):
        self.ctx = ctx
        self.worker_id = worker_id
        self.task_q = ctx.Queue()
        self.result_q = ctx.Queue()
        self.proc = ctx.Process(
            target=_pool_worker_main,
            args=(worker_id, self.task_q, self.result_q),
            daemon=True,
        )
        self.proc.start()

    @property
    def pid(self) -> Optional[int]:
        return self.proc.pid

    def kill(self) -> None:
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(timeout=2.0)
            if self.proc.is_alive():
                self.proc.kill()
                self.proc.join(timeout=2.0)

    def stop(self) -> None:
        """Graceful shutdown: sentinel, short join, then force."""
        try:
            self.task_q.put(None)
        except (OSError, ValueError):
            pass
        self.proc.join(timeout=2.0)
        self.kill()


class ProcessEngine:
    """A fixed-size farm of engine worker processes.

    ``call`` checks a worker out, runs one engine op on it, and returns
    the result — raising the same typed :class:`repro.api.ApiError`
    vocabulary the inline facade raises, plus :class:`WorkerCrash` when
    the worker died under the request.  Thread-safe: the service's pool
    threads each check out a distinct worker.
    """

    def __init__(self, workers: int = 4,
                 on_count: Optional[Callable[[str], Any]] = None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            self._ctx = multiprocessing.get_context("spawn")
        self._on_count = on_count
        self._closed = False
        self._lock = threading.Lock()
        self._next_id = workers
        self._idle: "queue_mod.Queue[_PoolWorker]" = queue_mod.Queue()
        self._all: List[_PoolWorker] = []
        for worker_id in range(workers):
            worker = _PoolWorker(self._ctx, worker_id)
            self._all.append(worker)
            self._idle.put(worker)

    # -- bookkeeping -------------------------------------------------------

    def _count(self, name: str) -> None:
        if self._on_count is not None:
            self._on_count(name)

    def worker_pids(self) -> List[int]:
        """Live worker pids (test/chaos hook: kill one to prove
        isolation)."""
        with self._lock:
            return [w.pid for w in self._all if w.proc.is_alive()]

    def _respawn(self, dead: _PoolWorker) -> _PoolWorker:
        dead.kill()
        with self._lock:
            replacement = _PoolWorker(self._ctx, self._next_id)
            self._next_id += 1
            self._all[self._all.index(dead)] = replacement
        self._count("serve.pool.respawns")
        return replacement

    # -- the one public operation ------------------------------------------

    def call(self, op: str, params: Dict[str, Any],
             cancel: Optional[threading.Event] = None) -> Dict[str, Any]:
        """Run one engine op on a checked-out worker process."""
        worker = self._idle.get()
        if not worker.proc.is_alive():
            # Killed while idle (nothing was lost): respawn silently
            # instead of failing an innocent request.
            worker = self._respawn(worker)
        try:
            worker, outcome = self._call_on(worker, op, params, cancel)
        finally:
            self._idle.put(worker)
        kind = outcome[0]
        if kind == "ok":
            return outcome[1]
        if kind == "crash":
            raise WorkerCrash(outcome[1])
        if kind == "cancelled":
            raise WorkerCrash(outcome[1])  # nobody is waiting; typed anyway
        _, code, message = outcome
        raise _API_ERRORS.get(code, api.EngineError)(message)

    def _call_on(self, worker: _PoolWorker, op: str, params: Dict[str, Any],
                 cancel: Optional[threading.Event],
                 ) -> Tuple[_PoolWorker, Tuple]:
        """Returns (worker-to-return-to-pool, outcome tuple)."""
        try:
            worker.task_q.put((op, dict(params)))
        except (OSError, ValueError):
            return self._respawn(worker), (
                "crash", "worker task queue unusable; worker respawned")
        while True:
            try:
                msg = worker.result_q.get(timeout=_POLL_S)
            except queue_mod.Empty:
                if cancel is not None and cancel.is_set():
                    # Nobody wants the answer: stop burning the core.
                    self._count("serve.pool.cancelled_kills")
                    return self._respawn(worker), (
                        "cancelled",
                        "cancelled mid-computation: every waiter's "
                        "deadline expired; worker terminated")
                if not worker.proc.is_alive():
                    # Died under the request — but it may have posted
                    # the result in its final breath; drain once more.
                    try:
                        msg = worker.result_q.get_nowait()
                    except queue_mod.Empty:
                        self._count("serve.pool.crashes")
                        return self._respawn(worker), (
                            "crash",
                            f"worker process (pid {worker.pid}) died "
                            f"while computing {op!r}; worker respawned, "
                            "request failed with no partial effects")
                    return self._respawn(worker), msg
                continue
            return worker, msg

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Stop every worker (graceful sentinel, then force)."""
        if self._closed:
            return
        self._closed = True
        # Drain the idle queue so no call can check out a dying worker.
        drained: List[_PoolWorker] = []
        deadline = time.monotonic() + 5.0
        with self._lock:
            expected = len(self._all)
        while len(drained) < expected and time.monotonic() < deadline:
            try:
                drained.append(self._idle.get(timeout=0.2))
            except queue_mod.Empty:
                continue
        with self._lock:
            workers = list(self._all)
        for worker in workers:
            worker.stop()


_API_ERRORS = {
    "bad_request": api.BadRequest,
    "transform_refused": api.TransformRefused,
    "engine_error": api.EngineError,
    "internal": api.EngineError,
}
