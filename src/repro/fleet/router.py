"""The shard router: ``repro route``.

An NDJSON/TCP front (the same wire protocol as ``repro serve``) that
owns no engine of its own — it consistent-hashes each engine request
across a fleet of ``repro serve`` backends and absorbs their failures.
Per request, in order:

1. **Cache** — the request's content digest is looked up in a bounded
   LRU of successful results.  Sound for the same reason single-flight
   coalescing is: facade calls are deterministic modulo ``wall``, so a
   previous answer *is* this answer.
2. **Single-flight** — concurrent identical requests coalesce onto one
   in-flight route: the first arrival (the *leader*) does the work,
   every other arrival blocks on the flight (bounded by its own
   deadline) and is answered from the leader's outcome.  Without this,
   a cold popular key is a stampede: N identical waiters fan out as N
   backend calls that all compute the same thing.
3. **Shared cache** — with ``--cache-server`` configured, the flight
   leader consults the fleet-shared op cache
   (:class:`~repro.scale.cacheclient.OpCache`, stage-fingerprint keys)
   before touching a backend, and publishes successful results back so
   one shard's computation warms every peer.
4. **Ring** — :class:`~repro.fleet.ring.HashRing` maps the digest to a
   failover itinerary (owner first, then each surviving backend once).
5. **Breakers** — backends whose circuit breaker refuses admission are
   skipped without a connect attempt.
6. **Send, retry** — transport failures (connect/timeout/closed) and
   explicit pressure (``overloaded`` / ``shutting_down``) move to the
   next backend after a jittered backoff
   (:class:`~repro.fleet.retry.RetryPolicy`); definitive outcomes
   (``bad_request``, ``engine_error``, ...) are returned as-is, never
   retried.  Transport failures feed the breaker; pressure responses
   do not (a server that says "overloaded" is alive and correct).
7. **Fallback** — when no backend could answer, the router degrades to
   *sequential in-process* execution over :mod:`repro.api` (one at a
   time, under a lock — a limping fleet, not a dead one).  With
   fallback disabled it returns the ``unavailable`` error instead.

Draining: the ``drain`` control op with ``params.backend`` bleeds one
backend out of the ring — membership changes first, then the backend
itself is asked to drain, so stragglers racing the membership change
get ``shutting_down`` and retry onto the new owner.  Without
``params.backend`` the router itself drains.

Rejoining: with ``auto_rejoin`` (the default) a bled backend stays on
the health prober's schedule.  Once the prober has seen it *down* and
then *healthy* again — i.e. the process actually went away and a new
one answers on that address — the router re-adds it to the ring
automatically (``fleet.backend.rejoined``).  The down-transition gate
matters: a backend bled for rebalancing (``stop_backend=False``) keeps
answering probes, and must not be snapped straight back into the ring
by its next healthy probe.

The connection front is a single event-loop thread (selector-based),
not thread-per-connection: cache hits and cheap control ops are
answered inline, in strict arrival order — which keeps the hot-path
latency distribution flat — while cache misses are dispatched to a
small pool of routing threads (they block on backend sockets, backoff
sleeps and the sequential fallback).  Responses to pipelined requests
on one connection may be answered out of order; responses carry the
request ``id``.

Every decision is observable: ``fleet.*`` counters, and with a
recorder attached, ``fleet.request`` spans on the ``PID_FLEET`` track
(one lane per serving thread) whose args carry the route taken.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from random import Random
from typing import Any, Dict, List, Optional, Tuple

from repro import api
from repro.fleet.breaker import CircuitBreaker
from repro.fleet.client import BackendClient, BackendError
from repro.fleet.health import HealthProber
from repro.fleet.retry import RetryPolicy, retryable_code
from repro.fleet.ring import HashRing
from repro.serve.chaos import FAULT_BLACKHOLE, FAULT_SLOW, FleetFaultPlan
from repro.serve.protocol import (
    CONTROL_OPS,
    ERR_BAD_REQUEST,
    ERR_DEADLINE,
    ERR_INTERNAL,
    ERR_UNAVAILABLE,
    ERROR_CODES,
    ProtocolError,
    Request,
    encode,
    error_response,
    ok_response,
    parse_request,
)
from repro.serve.server import NdjsonServer, engine_call


def parse_backend(spec: str) -> Tuple[str, str, int]:
    """``"host:port"`` → (name, host, port); name is the spec itself."""
    host, sep, port = spec.rpartition(":")
    if not sep or not host or not port.isdigit():
        raise ValueError(f"backend must be host:port, got {spec!r}")
    return spec, host, int(port)


@dataclass(frozen=True)
class RouterConfig:
    """Router topology + policy (the ``repro route`` flags)."""

    host: str = "127.0.0.1"
    port: int = 0
    backends: Tuple[str, ...] = ()  # "host:port" specs
    vnodes: int = 64
    connect_timeout_s: float = 1.0
    request_timeout_s: float = 30.0  # transport cap per attempt
    default_deadline_ms: float = 30_000.0
    attempts: int = 3
    retry_base_delay_s: float = 0.05
    retry_max_delay_s: float = 2.0
    seed: int = 0  # retry jitter RNG
    breaker_failure_threshold: int = 3
    breaker_cooldown_s: float = 0.5
    breaker_max_cooldown_s: float = 30.0
    breaker_probe_budget: int = 1
    probe_interval_s: float = 0.5
    probe_max_interval_s: float = 10.0
    fallback: bool = True
    cache_size: int = 256  # successful results; 0 disables
    cache_server: Optional[str] = None  # fleet-shared "host:port" op cache
    auto_rejoin: bool = True  # re-ring bled backends seen down → healthy
    io_workers: int = 16  # threads for cache-miss routing
    drain_timeout: float = 30.0
    chaos: Optional[FleetFaultPlan] = None
    recorder: Any = None


class _Backend:
    """One fleet member: client + breaker + send accounting."""

    __slots__ = ("client", "breaker", "sent", "ok", "failed")

    def __init__(self, client: BackendClient, breaker: CircuitBreaker):
        self.client = client
        self.breaker = breaker
        self.sent = 0
        self.ok = 0
        self.failed = 0


class _RouteFlight:
    """Single-flight state for one in-flight route key.

    The leader stores a *neutral* outcome — ``("ok", result)`` or
    ``("error", code, message)`` — never a wire response: every waiter
    builds its own response carrying its own request ``id`` and wall
    time."""

    __slots__ = ("event", "outcome")

    def __init__(self):
        self.event = threading.Event()
        self.outcome: Optional[Tuple] = None


class _Drained:
    """A bled backend held for auto-rejoin: still probed, out of the
    ring until the prober sees it go down and come back healthy."""

    __slots__ = ("backend", "went_down")

    def __init__(self, backend: "_Backend"):
        self.backend = backend
        self.went_down = False


class _Conn:
    """One accepted connection on the event-loop front."""

    __slots__ = ("sock", "buf", "lock")

    def __init__(self, sock):
        self.sock = sock
        self.buf = bytearray()
        self.lock = threading.Lock()  # serializes interleaved replies


class ShardRouter(NdjsonServer):
    """The self-healing NDJSON front over a fleet of backends."""

    def __init__(self, config: RouterConfig = RouterConfig()):
        super().__init__(host=config.host, port=config.port,
                         drain_timeout=config.drain_timeout)
        self.config = config
        self._ring = HashRing(vnodes=config.vnodes)
        self._backends: Dict[str, _Backend] = {}
        self._members_lock = threading.Lock()
        self._retry = RetryPolicy(
            attempts=config.attempts,
            base_delay_s=config.retry_base_delay_s,
            max_delay_s=config.retry_max_delay_s,
            rng=Random(config.seed),
        )
        self._counters: Dict[str, int] = {}
        self._obs_lock = threading.Lock()
        self._tids: Dict[int, int] = {}
        self._cache: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._cache_lock = threading.Lock()
        self._flights: Dict[str, _RouteFlight] = {}
        self._flights_lock = threading.Lock()
        self._drained_members: Dict[str, _Drained] = {}
        self._op_cache = (api.open_op_cache(config.cache_server)
                          if config.cache_server else None)
        self._fallback_lock = threading.Lock()
        self._started = time.perf_counter()
        for spec in config.backends:
            self.add_backend(spec)
        self._prober = HealthProber(
            clients={name: b.client for name, b in self._backends.items()},
            breakers={name: b.breaker for name, b in self._backends.items()},
            interval_s=config.probe_interval_s,
            max_interval_s=config.probe_max_interval_s,
            probe_timeout_s=config.connect_timeout_s,
            on_change=self._on_health_change,
        )

    # -- membership --------------------------------------------------------

    def add_backend(self, spec: str) -> None:
        name, host, port = parse_backend(spec)
        with self._members_lock:
            if name in self._backends:
                return
            held = self._drained_members.pop(name, None)
            if held is not None:
                # Manual re-add of a bled member: restore the held
                # backend (its breaker history included) as-is.
                self._backends[name] = held.backend
                self._ring.add(name)
                return
            client = BackendClient(
                name, host, port,
                connect_timeout_s=self.config.connect_timeout_s)
            breaker = CircuitBreaker(
                failure_threshold=self.config.breaker_failure_threshold,
                cooldown_s=self.config.breaker_cooldown_s,
                max_cooldown_s=self.config.breaker_max_cooldown_s,
                probe_budget=self.config.breaker_probe_budget,
                on_transition=self._breaker_transition(name),
            )
            self._backends[name] = _Backend(client, breaker)
            self._ring.add(name)

    def bleed_backend(self, name: str,
                      stop_backend: bool = True) -> Dict[str, Any]:
        """Graceful drain: remove a backend from the ring, then (by
        default) ask the backend process itself to drain and exit.

        Ring first, backend second: requests racing the change get
        ``shutting_down`` from the backend, which is retryable, and
        land on the ring's new owner.

        With ``auto_rejoin`` the bled member is *not* forgotten by the
        health prober: it is parked in ``_drained``, and once a probe
        sees it down and a later probe finds it healthy again (a fresh
        process on the same address), :meth:`_on_health_change` re-adds
        it to the ring.
        """
        with self._members_lock:
            backend = self._backends.pop(name, None)
            self._ring.remove(name)
            if backend is not None and self.config.auto_rejoin:
                self._drained_members[name] = _Drained(backend)
        if backend is None or not self.config.auto_rejoin:
            self._prober.forget(name)
        if backend is None:
            return {"kind": "drain", "status": "unknown-backend",
                    "backend": name, "ring": self.ring_members()}
        self._count("fleet.backend.drained")
        status = "bled"
        if stop_backend:
            try:
                backend.client.call("drain", timeout_s=2.0)
                status = "bled+stopped"
            except (BackendError, ValueError):
                status = "bled (backend unreachable)"
        return {"kind": "drain", "status": status, "backend": name,
                "ring": self.ring_members()}

    def ring_members(self) -> List[str]:
        with self._members_lock:
            return self._ring.members

    # -- observability -----------------------------------------------------

    def _count(self, name: str, n: int = 1) -> None:
        with self._obs_lock:
            self._counters[name] = self._counters.get(name, 0) + n
            if self.config.recorder is not None:
                self.config.recorder.count(name, n)

    def counters(self) -> Dict[str, int]:
        with self._obs_lock:
            return dict(sorted(self._counters.items()))

    def _breaker_transition(self, name: str):
        def on_transition(frm: str, to: str) -> None:
            del frm
            self._count(f"fleet.breaker.{to}")
        del name
        return on_transition

    def _on_health_change(self, name: str, healthy: bool) -> None:
        self._count("fleet.health.up" if healthy else "fleet.health.down")
        if not self.config.auto_rejoin:
            return
        rejoined = False
        with self._members_lock:
            held = self._drained_members.get(name)
            if held is None:
                return
            if not healthy:
                # The bled process actually went away; the next healthy
                # probe is a *new* process and may rejoin.
                held.went_down = True
            elif held.went_down and name not in self._backends:
                self._drained_members.pop(name, None)
                self._backends[name] = held.backend
                self._ring.add(name)
                rejoined = True
        if rejoined:
            self._count("fleet.backend.rejoined")

    def _track(self) -> int:
        """Dense per-connection-thread track id for PID_FLEET."""
        ident = threading.get_ident()
        with self._obs_lock:
            if ident not in self._tids:
                self._tids[ident] = len(self._tids)
            return self._tids[ident]

    def _span(self, ph: str, tid: int, args: Optional[dict] = None) -> None:
        recorder = self.config.recorder
        if recorder is None:
            return
        from repro.obs.recorder import PID_FLEET

        with self._obs_lock:
            recorder.event("fleet.request", "fleet", ph=ph,
                           pid=PID_FLEET, tid=tid, args=args or {})

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> Tuple[str, int]:
        address = super().start()
        self._prober.start()
        return address

    def on_drain(self) -> None:
        self._prober.stop()

    # -- the event-loop front ----------------------------------------------
    #
    # Unlike the engine server (thread per connection; requests *block*
    # on engine work), the router's hot path — a cache hit — is pure
    # in-memory lookup.  Serving it from a single event-loop thread
    # answers hits in strict arrival order, which keeps the latency
    # distribution flat: no herd of connection threads racing for the
    # interpreter, no request overtaken N times by later arrivals.
    # Cache misses (which block on backend sockets, backoff sleeps and
    # the sequential fallback) are handed to a small pool of routing
    # threads; their replies are written back under a per-connection
    # lock.  Pipelined requests on one connection may therefore be
    # answered out of order — responses carry the request ``id``.

    def serve_forever(self) -> None:
        """Accept and serve connections on one event-loop thread until
        drain is requested, then drain: stop accepting, let dispatched
        routing work finish and deliver, and return."""
        import selectors
        from concurrent.futures import ThreadPoolExecutor

        if self._sock is None:
            self.start()
        selector = selectors.DefaultSelector()
        selector.register(self._sock, selectors.EVENT_READ, None)
        conns: Dict[Any, _Conn] = {}
        pool = ThreadPoolExecutor(max_workers=self.config.io_workers,
                                  thread_name_prefix="route-io")
        try:
            while not self._drain_requested.is_set():
                for key, _events in selector.select(self._ACCEPT_POLL):
                    if key.data is None:
                        self._accept_conn(selector, conns)
                    else:
                        self._service_conn(selector, conns, key.data, pool)
        finally:
            # In-flight routed work completes and replies before the
            # connections close: a drain is graceful, not a reset.
            pool.shutdown(wait=True)
            for conn in conns.values():
                try:
                    conn.sock.close()
                except OSError:
                    pass
            selector.close()
            self._drain()

    def _accept_conn(self, selector, conns) -> None:
        try:
            sock, _addr = self._sock.accept()
        except OSError:
            return
        sock.setblocking(True)  # reads are readiness-gated via the selector
        conn = _Conn(sock)
        conns[sock] = conn
        import selectors

        selector.register(sock, selectors.EVENT_READ, conn)

    def _service_conn(self, selector, conns, conn: _Conn, pool) -> None:
        try:
            chunk = conn.sock.recv(65536)
        except OSError:
            chunk = b""
        if not chunk:
            selector.unregister(conn.sock)
            conns.pop(conn.sock, None)
            try:
                conn.sock.close()
            except OSError:
                pass
            return
        conn.buf.extend(chunk)
        while b"\n" in conn.buf:
            line, _, rest = bytes(conn.buf).partition(b"\n")
            conn.buf[:] = rest
            self._dispatch_line(conn, line, pool)

    def _dispatch_line(self, conn: _Conn, line: bytes, pool) -> None:
        text = line.decode("utf-8", errors="replace").strip()
        if not text:
            return
        start = time.perf_counter()
        try:
            request = parse_request(text)
        except ProtocolError as err:
            self.on_bad_request()
            self._reply(conn, encode(error_response(
                err.request_id, ERR_BAD_REQUEST, str(err))))
            return
        if request.op in CONTROL_OPS:
            if request.op == "drain" and request.params.get("backend"):
                # Bleeding a backend round-trips to it; off the loop.
                pool.submit(self._control_reply, conn, request)
            else:
                self._reply(conn, encode(self._handle_control(request)))
            return
        key = api.content_digest({"op": request.op,
                                  "params": request.params})
        if self._cache_peek(key):
            self._reply(conn, encode(self._route(request, key, start)))
        else:
            pool.submit(self._routed_reply, conn, request, key, start)

    def _control_reply(self, conn: _Conn, request: Request) -> None:
        self._reply(conn, encode(self._handle_control(request)))

    def _routed_reply(self, conn: _Conn, request: Request, key: str,
                      start: float) -> None:
        try:
            payload = encode(self._route(request, key, start))
        except Exception as err:  # noqa: BLE001 — never lose a reply
            self._count(f"fleet.request.error.{ERR_INTERNAL}")
            payload = encode(error_response(
                request.id, ERR_INTERNAL,
                f"{type(err).__name__}: {err}"))
        self._reply(conn, payload)

    def _reply(self, conn: _Conn, payload: bytes) -> None:
        try:
            with conn.lock:
                conn.sock.sendall(payload)
        except OSError:
            pass  # client went away; the route already ran

    def _cache_peek(self, key: str) -> bool:
        if self.config.cache_size <= 0:
            return False
        with self._cache_lock:
            return key in self._cache

    # -- request handling --------------------------------------------------

    def handle_request(self, request: Request) -> Dict[str, Any]:
        if request.op in CONTROL_OPS:
            return self._handle_control(request)
        return self._route(request)

    def on_bad_request(self) -> None:
        self._count("fleet.request.bad_request")

    def _handle_control(self, request: Request) -> Dict[str, Any]:
        start = time.perf_counter()
        self._count("fleet.control")
        if request.op == "drain":
            backend = request.params.get("backend")
            if backend is not None:
                if not isinstance(backend, str):
                    return error_response(
                        request.id, ERR_BAD_REQUEST,
                        "params.backend must be a host:port string")
                body = self.bleed_backend(backend)
            else:
                self.request_drain()
                body = {"kind": "drain", "status": "draining",
                        "ring": self.ring_members()}
        elif request.op == "health":
            body = self._health()
        else:
            body = self._stats()
        return ok_response(request.id, request.op, body,
                           (time.perf_counter() - start) * 1000.0)

    def _health(self) -> Dict[str, Any]:
        probes = self._prober.snapshot()
        with self._members_lock:
            backends = {
                name: {
                    "breaker": backend.breaker.state,
                    "healthy": probes.get(name, {}).get("healthy"),
                }
                for name, backend in sorted(self._backends.items())
            }
        with self._members_lock:
            drained = sorted(self._drained_members)
        return {
            "kind": "health",
            "role": "router",
            "status": "draining" if self._drain_requested.is_set() else "ok",
            "ring": self.ring_members(),
            "backends": backends,
            "drained": drained,
        }

    def _stats(self) -> Dict[str, Any]:
        probes = self._prober.snapshot()
        with self._members_lock:
            backends = {
                name: {
                    "breaker": backend.breaker.snapshot(),
                    "probe": probes.get(name),
                    "sent": backend.sent,
                    "ok": backend.ok,
                    "failed": backend.failed,
                }
                for name, backend in sorted(self._backends.items())
            }
        with self._cache_lock:
            cache_entries = len(self._cache)
        with self._members_lock:
            drained = sorted(self._drained_members)
        body: Dict[str, Any] = {
            "kind": "stats",
            "role": "router",
            "status": "draining" if self._drain_requested.is_set() else "ok",
            "ring": self.ring_members(),
            "vnodes": self.config.vnodes,
            "attempts": self.config.attempts,
            "fallback": self.config.fallback,
            "cache": {"size": self.config.cache_size,
                      "entries": cache_entries},
            "backends": backends,
            "drained": drained,
            "counters": self.counters(),
            "uptime_s": round(time.perf_counter() - self._started, 3),
        }
        if self._op_cache is not None:
            body["shared_cache"] = {
                "server": self.config.cache_server,
                **self._op_cache.stats(),
            }
        if self.config.chaos is not None:
            body["chaos"] = self.config.chaos.describe()
        return body

    # -- the routing core --------------------------------------------------

    def _route(self, request: Request, key: Optional[str] = None,
               start: Optional[float] = None) -> Dict[str, Any]:
        # ``start`` is when the request line was parsed (so time queued
        # behind the routing pool counts against the deadline).
        if start is None:
            start = time.perf_counter()
        tid = self._track()
        if key is None:
            key = api.content_digest({"op": request.op,
                                      "params": request.params})
        self._span("B", tid, {"op": request.op, "key": key[:12]})
        route = "?"
        try:
            response, route = self._route_inner(request, key, start)
            return response
        finally:
            self._span("E", tid, {"op": request.op, "route": route})

    def _route_inner(self, request: Request, key: str,
                     start: float) -> Tuple[Dict[str, Any], str]:
        cached = self._cache_get(key)
        if cached is not None:
            self._count("fleet.cache.hits")
            self._count("fleet.request.ok")
            wall_ms = (time.perf_counter() - start) * 1000.0
            return (ok_response(request.id, request.op, cached, wall_ms),
                    "cache")
        self._count("fleet.cache.misses")
        flight, leader = self._join_flight(key)
        if not leader:
            return self._await_flight(flight, request, start)
        # The flight leader: one backend call feeds every concurrent
        # identical waiter.  The outcome is published (and the flight
        # retired) even if routing raises — waiters must never hang.
        outcome: Tuple = ("error", ERR_INTERNAL, "route leader crashed")
        route = "leader-crash"
        try:
            outcome, route = self._leader_route(request, key, start)
        finally:
            flight.outcome = outcome
            with self._flights_lock:
                self._flights.pop(key, None)
            flight.event.set()
        return (self._outcome_response(outcome, request, start), route)

    def _join_flight(self, key: str) -> Tuple[_RouteFlight, bool]:
        """Join (or open) the in-flight route for ``key``; the second
        element is True for the leader."""
        with self._flights_lock:
            flight = self._flights.get(key)
            if flight is not None:
                return flight, False
            flight = _RouteFlight()
            self._flights[key] = flight
            return flight, True

    def _await_flight(self, flight: _RouteFlight, request: Request,
                      start: float) -> Tuple[Dict[str, Any], str]:
        """A coalesced waiter: block — bounded by *this* request's own
        deadline — for the leader's outcome, then answer with this
        request's id.  A leader that hits its deadline propagates
        ``deadline_exceeded`` to its waiters; they were asking the
        same question and would have met the same fate."""
        self._count("fleet.request.coalesced")
        deadline_s = (request.deadline_ms
                      if request.deadline_ms is not None
                      else self.config.default_deadline_ms) / 1000.0
        remaining = start + deadline_s - time.perf_counter()
        if not flight.event.wait(max(0.0, remaining)):
            self._count("fleet.request.deadline_exceeded")
            return (error_response(
                request.id, ERR_DEADLINE,
                f"deadline of {deadline_s * 1000.0:.0f}ms exceeded while "
                "waiting on a coalesced in-flight route",
                (time.perf_counter() - start) * 1000.0),
                "coalesced:deadline")
        outcome = flight.outcome
        if outcome is None:  # defensive: the leader always publishes
            outcome = ("error", ERR_INTERNAL,
                       "coalesced flight lost its outcome")
        if outcome[0] == "ok":
            self._count("fleet.request.ok")
        else:
            self._count(f"fleet.request.error.{outcome[1]}")
        route = "coalesced" if outcome[0] == "ok" \
            else f"coalesced:{outcome[1]}"
        return (self._outcome_response(outcome, request, start), route)

    @staticmethod
    def _outcome_response(outcome: Tuple, request: Request,
                          start: float) -> Dict[str, Any]:
        wall_ms = (time.perf_counter() - start) * 1000.0
        if outcome[0] == "ok":
            return ok_response(request.id, request.op, outcome[1], wall_ms)
        return error_response(request.id, outcome[1], outcome[2], wall_ms)

    def _leader_route(self, request: Request, key: str,
                      start: float) -> Tuple[Tuple, str]:
        """The flight leader's work: fleet-shared cache first (when
        configured), then the backend itinerary; successful results are
        published back to the shared cache so one shard's computation
        warms every peer."""
        if self._op_cache is not None:
            result = self._op_cache.get(request.op, dict(request.params))
            if result is not None:
                self._count("fleet.shared_cache.hits")
                self._count("fleet.request.ok")
                self._cache_put(key, result)
                return ("ok", result), "shared-cache"
            self._count("fleet.shared_cache.misses")
        outcome, route = self._route_backends(request, key, start)
        if outcome[0] == "ok" and self._op_cache is not None:
            self._op_cache.put(request.op, dict(request.params), outcome[1])
        return outcome, route

    def _route_backends(self, request: Request, key: str,
                        start: float) -> Tuple[Tuple, str]:
        deadline_s = (request.deadline_ms
                      if request.deadline_ms is not None
                      else self.config.default_deadline_ms) / 1000.0
        deadline_end = start + deadline_s
        with self._members_lock:
            itinerary = self._ring.lookup(key)
        failures: List[str] = []
        retries = 0
        for position, name in enumerate(itinerary):
            if retries >= self._retry.attempts:
                break
            with self._members_lock:
                backend = self._backends.get(name)
            if backend is None:
                continue  # bled from the ring after the lookup
            if not backend.breaker.allow():
                self._count("fleet.route.breaker_skips")
                failures.append(f"{name}: breaker open")
                continue
            remaining = deadline_end - time.perf_counter()
            if remaining <= 0:
                self._count("fleet.request.deadline_exceeded")
                return (("error", ERR_DEADLINE,
                         f"deadline of {deadline_s * 1000.0:.0f}ms exceeded "
                         f"while routing "
                         f"(tried: {'; '.join(failures) or 'none'})"),
                        "deadline")
            if position > 0:
                self._count("fleet.route.failovers")
            outcome = self._send(backend, request, remaining)
            kind = outcome[0]
            if kind == "ok":
                self._cache_put(key, outcome[1])
                self._count("fleet.request.ok")
                return (("ok", outcome[1]),
                        name if position == 0 else f"failover:{name}")
            if kind == "definitive":
                code, message = outcome[1], outcome[2]
                self._count(f"fleet.request.error.{code}")
                return (("error", code, message), f"{name}:{code}")
            # Retryable (transport failure or pressure): back off with
            # jitter before the next backend, budget permitting.
            failures.append(f"{name}: {outcome[1]}")
            if self._retry.should_retry(retries):
                delay = self._retry.delay_s(retries)
                self._count("fleet.route.retries")
                if deadline_end - time.perf_counter() > delay:
                    time.sleep(delay)
            retries += 1
        return self._degrade(request, key, start, failures)

    def _send(self, backend: _Backend, request: Request,
              remaining_s: float) -> Tuple:
        """One attempt against one backend.

        Returns ``("ok", result)``, ``("definitive", code, message)``,
        or ``("retryable", why)``.  Transport failures feed the
        breaker; protocol responses of any kind count as the backend
        being alive (success for the breaker's purposes).
        """
        name = backend.client.name
        if self.config.chaos is not None:
            fault = self.config.chaos.on_send(name)
            if fault is not None:
                kind, value = fault
                if kind == FAULT_BLACKHOLE:
                    # Synthetic connect failure: consumed without
                    # touching the network, but fed to the breaker like
                    # the real thing.
                    self._count("fleet.fault.blackhole")
                    backend.breaker.record_failure()
                    with self._obs_lock:
                        backend.failed += 1
                    return ("retryable", "chaos blackhole (synthetic "
                                         "connect failure)")
                if kind == FAULT_SLOW:
                    self._count("fleet.fault.slow")
                    time.sleep(min(value / 1000.0, max(0.0, remaining_s)))
        timeout_s = min(remaining_s, self.config.request_timeout_s)
        with self._obs_lock:
            backend.sent += 1
        try:
            response = backend.client.call(
                request.op, request.params, request_id=request.id,
                deadline_ms=remaining_s * 1000.0, timeout_s=timeout_s)
        except BackendError as err:
            self._count(f"fleet.transport.{err.kind}")
            backend.breaker.record_failure()
            with self._obs_lock:
                backend.failed += 1
            return ("retryable", f"transport {err.kind}")
        except ValueError as err:
            # Unparseable response line: treat like a mid-exchange close.
            self._count("fleet.transport.garbled")
            backend.breaker.record_failure()
            with self._obs_lock:
                backend.failed += 1
            return ("retryable", f"garbled response: {err}")
        backend.breaker.record_success()
        if response.get("ok"):
            with self._obs_lock:
                backend.ok += 1
            return ("ok", response.get("result", {}))
        error = response.get("error") or {}
        code = error.get("code", ERR_INTERNAL)
        message = error.get("message", "backend error")
        if code not in ERROR_CODES:
            code = ERR_INTERNAL
        if retryable_code(code):
            self._count(f"fleet.pressure.{code}")
            with self._obs_lock:
                backend.failed += 1
            return ("retryable", f"pressure: {code}")
        return ("definitive", code, f"[{name}] {message}")

    def _degrade(self, request: Request, key: str, start: float,
                 failures: List[str]) -> Tuple[Tuple, str]:
        """Every backend failed (or none exist): fall back or refuse."""
        del start
        tried = "; ".join(failures) if failures else "no backends in ring"
        if not self.config.fallback:
            self._count("fleet.request.unavailable")
            return (("error", ERR_UNAVAILABLE,
                     f"no backend available ({tried}) and sequential "
                     "fallback is disabled"), "unavailable")
        self._count("fleet.fallback")
        # Sequential on purpose: the router host is the last line of
        # defense, not a second fleet — one request at a time bounds
        # the blast radius of a total backend outage.
        with self._fallback_lock:
            try:
                result = engine_call(request.op, dict(request.params))
            except api.ApiError as err:
                code = err.code if err.code in ERROR_CODES else ERR_INTERNAL
                self._count(f"fleet.request.error.{code}")
                return (("error", code, str(err)), f"fallback:{code}")
            except (TypeError, ValueError) as err:
                self._count(f"fleet.request.error.{ERR_BAD_REQUEST}")
                return (("error", ERR_BAD_REQUEST, f"bad params: {err}"),
                        "fallback:bad_request")
            except Exception as err:  # noqa: BLE001 - the last line of
                self._count(f"fleet.request.error.{ERR_INTERNAL}")  # defense
                return (("error", ERR_INTERNAL,
                         f"{type(err).__name__}: {err}"),
                        "fallback:internal")
        self._cache_put(key, result)
        self._count("fleet.request.ok")
        return (("ok", result), "fallback")

    # -- the response cache ------------------------------------------------

    def _cache_get(self, key: str) -> Optional[Dict[str, Any]]:
        if self.config.cache_size <= 0:
            return None
        with self._cache_lock:
            result = self._cache.get(key)
            if result is not None:
                self._cache.move_to_end(key)
            return result

    def _cache_put(self, key: str, result: Dict[str, Any]) -> None:
        if self.config.cache_size <= 0:
            return
        with self._cache_lock:
            self._cache[key] = result
            self._cache.move_to_end(key)
            while len(self._cache) > self.config.cache_size:
                self._cache.popitem(last=False)
