"""Retry policy: when to try again, and how long to wait.

The router retries a request on the *next* backend in the failover
itinerary only when the failure says nothing about the request itself:

* transport failures — connect refused/reset, connect or read timeout,
  connection closed mid-response (the backend died under us);
* explicit pressure — ``overloaded`` (bounded admission queue full)
  and ``shutting_down`` (backend draining): both mean "a healthy
  server declined", and the facade call is deterministic and
  side-effect-free, so re-sending elsewhere is always sound.

Everything else is **definitive** and must not be retried:
``bad_request`` / ``transform_refused`` would fail identically
everywhere; ``engine_error`` / ``internal`` already consumed a worker
and is deterministic, so a second backend would burn another worker to
produce the same answer; ``deadline_exceeded`` means the client's
budget is spent — retrying past it only wastes fleet capacity.

Delays are exponential with bounded decorrelated jitter:
``delay(attempt) ∈ [base * 2^attempt / 2, base * 2^attempt]``, capped
at ``max_delay_s``.  The jitter RNG is injected so property tests can
drive the bounds deterministically (``tests/test_fleet_retry.py``
checks every sampled delay against :meth:`RetryPolicy.delay_bounds`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Tuple

#: Error codes that are safe to retry on another backend.
RETRYABLE_CODES = frozenset({"overloaded", "shutting_down"})
#: Error codes that must never be retried (definitive outcomes).
DEFINITIVE_CODES = frozenset({
    "bad_request", "transform_refused", "engine_error", "internal",
    "deadline_exceeded", "unavailable",
})


def retryable_code(code: str) -> bool:
    """Is a *protocol-level* error response worth retrying elsewhere?

    Unknown codes are treated as definitive: a vocabulary we don't
    recognize might not be idempotent-safe, and the stable-vocabulary
    contract says new retryable codes are added here first.
    """
    return code in RETRYABLE_CODES


@dataclass(frozen=True)
class RetryPolicy:
    """How many attempts, and how long between them.

    ``attempts`` counts tries, not retries: ``attempts=3`` means the
    original send plus up to two more.  The delay for retry ``i``
    (0-based) is uniform in ``delay_bounds(i)``.
    """

    attempts: int = 3
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    rng: random.Random = field(default_factory=random.Random, repr=False,
                               compare=False)

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.base_delay_s <= 0 or self.max_delay_s < self.base_delay_s:
            raise ValueError("need 0 < base_delay_s <= max_delay_s")

    def delay_bounds(self, attempt: int) -> Tuple[float, float]:
        """Closed interval the ``attempt``-th retry delay falls in."""
        if attempt < 0:
            raise ValueError("attempt must be >= 0")
        high = min(self.base_delay_s * (2 ** attempt), self.max_delay_s)
        return (high / 2.0, high)

    def delay_s(self, attempt: int) -> float:
        """A jittered delay before the ``attempt``-th retry (0-based)."""
        low, high = self.delay_bounds(attempt)
        return self.rng.uniform(low, high)

    def should_retry(self, attempt: int) -> bool:
        """May a failure on try ``attempt`` (0-based) be retried?"""
        return attempt + 1 < self.attempts
