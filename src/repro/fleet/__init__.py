"""Fault-tolerant serve fleet: process pools behind a shard router.

Two layers, both thin hosting shells over :mod:`repro.api` — no engine
imports (enforced by the import-boundary test):

* :mod:`repro.fleet.pool` — a respawning process-pool executor for a
  single ``repro serve`` backend (``--executor process``): per-worker
  crash isolation, real cancellation, orphan protection.
* :mod:`repro.fleet.router` — ``repro route``: a shard router that
  consistent-hashes requests across N backends
  (:mod:`repro.fleet.ring`), probes their health
  (:mod:`repro.fleet.health`), retries transport failures with jittered
  backoff (:mod:`repro.fleet.retry`), trips per-backend circuit
  breakers (:mod:`repro.fleet.breaker`), drains backends out of the
  ring gracefully, and — when every backend is down — degrades to
  sequential in-process fallback rather than failing the client.

The contract throughout: a fleet answer is byte-identical (modulo
``wall``) to the one-shot CLI for the same inputs, whatever the
topology and whatever faults were injected along the way.
"""

from repro.fleet.breaker import CircuitBreaker
from repro.fleet.pool import ProcessEngine, WorkerCrash
from repro.fleet.retry import RetryPolicy
from repro.fleet.ring import HashRing
from repro.fleet.router import RouterConfig, ShardRouter

__all__ = [
    "CircuitBreaker",
    "HashRing",
    "ProcessEngine",
    "RetryPolicy",
    "RouterConfig",
    "ShardRouter",
    "WorkerCrash",
]
