"""``repro chaos --fleet``: attack the serve fleet, assert the contract.

The machine-level chaos sweep (``repro chaos``) perturbs the simulated
machine's timing and asserts sequential equivalence survives; this
runner applies the same trust-but-verify discipline one layer up, to
the fleet itself.  It stands up a *real* topology — N ``repro serve``
backend processes behind an in-process
:class:`~repro.fleet.router.ShardRouter` — and attacks it three ways
at once:

* a seeded :class:`~repro.serve.chaos.FleetFaultPlan` black-holes and
  slows router → backend sends (driving retry, failover, and the
  circuit breakers);
* midway through the request stream, one backend (seed-chosen) is
  ``kill -9``'d with no warning;
* the stream itself continues at full rate throughout.

The asserted contract is the fleet's reason to exist: **every** client
request still receives either a correct result or a typed error — no
dropped connections, no hangs — and a seed-chosen sample of results is
verified byte-identical (modulo ``wall``) to one-shot in-process
:mod:`repro.api` calls.  Determinism: the fault stream, the kill
choice, and the verification sample all derive from ``--seed``.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Any, Dict, List, Optional

from repro import api
from repro.fleet.client import BackendClient, BackendError
from repro.fleet.router import RouterConfig, ShardRouter
from repro.fleet.testbed import spawn_backend, wait_healthy
from repro.serve.chaos import FleetFaultPlan
from repro.serve.server import engine_call

FIG5 = """
(declaim (sapp f5 l))
(defun f5 (l)
  (cond ((null l) nil)
        ((null (cdr l)) (f5 (cdr l)))
        (t (setf (cadr l) (+ (car l) (cadr l)))
           (f5 (cdr l)))))
(setq data (list 1 2 3 4))
"""


def fleet_workload(requests: int) -> List[Dict[str, Any]]:
    """``requests`` distinct engine requests (distinct content digests:
    each variant's source differs by a comment, which the digest sees
    but the engine ignores)."""
    base = (
        ("run", {"source": FIG5,
                 "expr": "(progn (f5-cc data) (identity data))",
                 "transform": ["f5"]}),
        ("analyze", {"source": FIG5, "function": "f5"}),
        ("transform", {"source": FIG5, "function": "f5"}),
    )
    out = []
    for i in range(requests):
        op, params = base[i % len(base)]
        params = dict(params)
        params["source"] = f"{params['source']}\n; variant {i}\n"
        out.append({"op": op, "params": params})
    return out


def run_fleet_chaos(seed: int = 0, backends: int = 3, requests: int = 24,
                    kill_one: bool = True, budget: int = 64,
                    verify_sample: int = 6,
                    recorder: Any = None) -> Dict[str, Any]:
    """Run the attack; returns a JSON-able report with ``ok``."""
    rng = random.Random(seed)
    plan = FleetFaultPlan(seed, blackhole_rate=0.15, slow_rate=0.15,
                          slow_ms=(10.0, 80.0), budget=budget)
    procs = [spawn_backend(executor="thread", workers=2)
             for _ in range(backends)]
    router: Optional[ShardRouter] = None
    serve_thread: Optional[threading.Thread] = None
    killed: Optional[str] = None
    outcomes: List[Dict[str, Any]] = []
    try:
        for proc in procs:
            wait_healthy(proc.spec)
        router = ShardRouter(RouterConfig(
            backends=tuple(p.spec for p in procs),
            connect_timeout_s=0.5,
            attempts=max(3, backends),
            retry_base_delay_s=0.02,
            retry_max_delay_s=0.25,
            seed=seed,
            breaker_cooldown_s=0.25,
            probe_interval_s=0.25,
            cache_size=0,  # every request must route; no cache shortcuts
            chaos=plan,
            recorder=recorder,
        ))
        host, port = router.start()
        serve_thread = threading.Thread(target=router.serve_forever,
                                        daemon=True)
        serve_thread.start()
        client = BackendClient("router", host, port, connect_timeout_s=2.0)
        workload = fleet_workload(requests)
        kill_at = requests // 2 if kill_one and requests else None
        for i, item in enumerate(workload):
            if kill_at is not None and i == kill_at:
                victim = procs[rng.randrange(len(procs))]
                killed = victim.spec
                victim.sigkill()
            start = time.perf_counter()
            try:
                response = client.call(item["op"], item["params"],
                                       request_id=i, deadline_ms=60_000.0,
                                       timeout_s=60.0)
            except (BackendError, ValueError) as err:
                outcomes.append({"i": i, "op": item["op"],
                                 "outcome": "transport-failure",
                                 "detail": str(err)})
                continue
            outcome = {
                "i": i,
                "op": item["op"],
                "outcome": "ok" if response.get("ok") else
                           (response.get("error") or {}).get("code",
                                                             "malformed"),
                "wall_ms": round((time.perf_counter() - start) * 1000.0, 3),
            }
            if response.get("ok"):
                outcome["result"] = response.get("result", {})
            outcomes.append(outcome)
        stats = router._stats()  # noqa: SLF001 - same-package diagnostics
    finally:
        if router is not None:
            router.stop(timeout=10.0)
        if serve_thread is not None:
            serve_thread.join(timeout=10.0)
        for proc in procs:
            proc.terminate()
    # Verify a seed-chosen sample of fleet answers byte-identical
    # (modulo wall) to one-shot in-process facade calls.
    mismatches: List[int] = []
    ok_outcomes = [o for o in outcomes if o["outcome"] == "ok"]
    sample = rng.sample(ok_outcomes, min(verify_sample, len(ok_outcomes)))
    workload = fleet_workload(requests)
    for picked in sample:
        item = workload[picked["i"]]
        expected = api.canonical_json(
            api.strip_wall(engine_call(item["op"], dict(item["params"]))))
        got = api.canonical_json(api.strip_wall(picked["result"]))
        if got != expected:
            mismatches.append(picked["i"])
    failures = [
        {k: v for k, v in o.items() if k != "result"}
        for o in outcomes if o["outcome"] != "ok"
    ]
    report: Dict[str, Any] = {
        "mode": "fleet",
        "seed": seed,
        "backends": backends,
        "requests": requests,
        "killed": killed,
        "ok": not failures and not mismatches,
        "failures": failures,
        "mismatches": mismatches,
        "fault_plan": plan.describe(),
        "verified_sample": len(sample),
        "counters": stats.get("counters", {}),
    }
    return report


def format_fleet_chaos(report: Dict[str, Any]) -> str:
    counters = report.get("counters", {})
    lines = [
        f";; fleet chaos: seed {report['seed']}, "
        f"{report['backends']} backend(s), {report['requests']} request(s)",
        f";; faults: {report['fault_plan']}",
    ]
    if report.get("killed"):
        lines.append(f";; killed mid-run: {report['killed']} (SIGKILL)")
    lines.append(
        f";; routing: {counters.get('fleet.route.failovers', 0)} "
        f"failover(s), {counters.get('fleet.route.retries', 0)} "
        f"retry(ies), {counters.get('fleet.fallback', 0)} fallback(s), "
        f"{counters.get('fleet.route.breaker_skips', 0)} breaker skip(s)")
    lines.append(f";; verified byte-identity (modulo wall) on "
                 f"{report['verified_sample']} sampled answer(s)"
                 + (f"; MISMATCH at {report['mismatches']}"
                    if report.get("mismatches") else ""))
    if report["ok"]:
        lines.append(
            f";; PASS: all {report['requests']} requests answered ok "
            f"under fire")
    else:
        lines.append(f";; FAIL: {len(report['failures'])} request(s) "
                     f"not answered ok:")
        for failure in report["failures"][:10]:
            lines.append(f";;   #{failure['i']} {failure['op']}: "
                         f"{failure['outcome']}"
                         + (f" ({failure.get('detail')})"
                            if failure.get("detail") else ""))
    return "\n".join(lines)
