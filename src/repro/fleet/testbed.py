"""Spawn real fleet topologies as subprocesses (for smoke/bench/chaos).

The unit and integration tests exercise the router against in-process
backends (threads — cheap, deterministic); the *fleet* contract,
though, is about surviving ``kill -9`` of a whole backend process, and
that can only be rehearsed with real processes.  This module is the
shared harness for the three places that do it — the fleet smoke test
(``scripts/fleet_smoke.py``), the fleet benchmark
(``benchmarks/bench_fleet.py``), and ``repro chaos --fleet``:

* :func:`spawn_backend` — a ``repro serve`` subprocess (either
  executor), its bound address parsed from the startup banner;
* :func:`spawn_router` — a ``repro route`` subprocess over a set of
  backend addresses;
* :func:`wait_healthy` — poll a server's ``health`` op until it
  answers ok (or a deadline passes);
* :class:`ServerProc` — handle with ``sigkill`` (the unannounced
  death), ``terminate`` (the polite one), and stdout capture for
  post-mortems.

Every helper takes explicit timeouts and never leaves a child behind:
``ServerProc`` registers itself and :func:`reap_all` (also installed
via ``atexit``) force-kills stragglers.
"""

from __future__ import annotations

import atexit
import os
import pathlib
import queue
import signal
import subprocess
import sys
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.fleet.client import BackendClient, BackendError

#: The src/ directory this package was imported from; children import
#: the same tree whatever the caller's cwd.
_SRC = pathlib.Path(__file__).resolve().parents[2]

_LIVE: List["ServerProc"] = []
_LIVE_LOCK = threading.Lock()


def _child_env() -> Dict[str, str]:
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (str(_SRC) if not existing
                         else str(_SRC) + os.pathsep + existing)
    return env


class ServerProc:
    """One server subprocess and its parsed listen address."""

    def __init__(self, proc: subprocess.Popen, role: str,
                 host: str, port: int):
        self.proc = proc
        self.role = role
        self.host = host
        self.port = port
        self.lines: List[str] = []  # stdout after the banner
        self._reader = threading.Thread(target=self._pump, daemon=True)
        self._reader.start()
        with _LIVE_LOCK:
            _LIVE.append(self)

    @property
    def spec(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def pid(self) -> int:
        return self.proc.pid

    def _pump(self) -> None:
        stream = self.proc.stdout
        if stream is None:
            return
        for line in stream:
            self.lines.append(line.rstrip("\n"))

    def alive(self) -> bool:
        return self.proc.poll() is None

    def sigkill(self) -> None:
        """The unannounced death the fleet must survive."""
        if self.alive():
            os.kill(self.proc.pid, signal.SIGKILL)
        self.proc.wait(timeout=10)

    def terminate(self, timeout: float = 15.0) -> int:
        """Polite shutdown (SIGTERM → the server drains); returns the
        exit code, force-killing if the drain overruns."""
        if self.alive():
            self.proc.terminate()
            try:
                self.proc.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=10)
        self._reader.join(timeout=2.0)
        with _LIVE_LOCK:
            if self in _LIVE:
                _LIVE.remove(self)
        return self.proc.returncode


def reap_all() -> None:
    """Force-kill every still-live spawned server (atexit safety net)."""
    with _LIVE_LOCK:
        stragglers = list(_LIVE)
        _LIVE.clear()
    for server in stragglers:
        try:
            if server.alive():
                server.proc.kill()
                server.proc.wait(timeout=5)
        except OSError:
            pass


atexit.register(reap_all)


def _spawn(argv: Sequence[str], role: str, banner: str,
           startup_timeout_s: float) -> ServerProc:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", *argv],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=_child_env(),
        cwd=str(_SRC.parent),
    )
    # The banner line arrives on stdout once the socket is bound; read
    # via a side thread so a hung child cannot hang the spawner.
    lines_q: "queue.Queue[Optional[str]]" = queue.Queue()

    def read_banner() -> None:
        stream = proc.stdout
        if stream is None:
            lines_q.put(None)
            return
        for line in stream:
            lines_q.put(line.rstrip("\n"))
            if banner in line:
                return
        lines_q.put(None)

    reader = threading.Thread(target=read_banner, daemon=True)
    reader.start()
    deadline = time.monotonic() + startup_timeout_s
    seen: List[str] = []
    address: Optional[Tuple[str, int]] = None
    while time.monotonic() < deadline:
        try:
            line = lines_q.get(timeout=0.2)
        except queue.Empty:
            if proc.poll() is not None:
                break
            continue
        if line is None:
            break
        seen.append(line)
        if banner in line:
            # "...: listening on host:port ..."
            after = line.split("listening on", 1)[1].strip()
            hostport = after.split()[0]
            host, _, port = hostport.rpartition(":")
            address = (host, int(port))
            break
    reader.join(timeout=1.0)
    if address is None:
        try:
            proc.kill()
        except OSError:
            pass
        raise RuntimeError(
            f"{role} did not report a listen address within "
            f"{startup_timeout_s:.0f}s; output so far: {seen!r}")
    return ServerProc(proc, role, address[0], address[1])


def spawn_backend(executor: str = "thread", workers: int = 2,
                  backlog: int = 32, port: int = 0,
                  extra_args: Sequence[str] = (),
                  startup_timeout_s: float = 30.0) -> ServerProc:
    """Start one ``repro serve`` backend; returns its handle."""
    argv = ["serve", "--port", str(port), "--workers", str(workers),
            "--backlog", str(backlog), "--executor", executor,
            *extra_args]
    return _spawn(argv, role=f"backend[{executor}]",
                  banner=";; serve: listening on",
                  startup_timeout_s=startup_timeout_s)


def spawn_router(backends: Sequence[str], port: int = 0,
                 extra_args: Sequence[str] = (),
                 startup_timeout_s: float = 30.0) -> ServerProc:
    """Start one ``repro route`` shard router over the backends."""
    argv = ["route", "--port", str(port)]
    for spec in backends:
        argv += ["--backend", spec]
    argv += list(extra_args)
    return _spawn(argv, role="router", banner=";; route: listening on",
                  startup_timeout_s=startup_timeout_s)


def wait_healthy(spec: str, timeout_s: float = 15.0,
                 expect_backends: Optional[int] = None) -> Dict[str, Any]:
    """Poll ``health`` until the server answers ok; returns the body.

    With ``expect_backends`` the wait also requires that many fleet
    members to be probed healthy (router warm-up).
    """
    host, _, port = spec.rpartition(":")
    client = BackendClient(spec, host, int(port), connect_timeout_s=1.0)
    deadline = time.monotonic() + timeout_s
    last = "no response yet"
    while time.monotonic() < deadline:
        try:
            response = client.call("health", timeout_s=2.0)
        except (BackendError, ValueError) as err:
            last = str(err)
            time.sleep(0.1)
            continue
        if response.get("ok"):
            body = response.get("result", {})
            if expect_backends is not None:
                healthy = [
                    name
                    for name, state in body.get("backends", {}).items()
                    if state.get("healthy")
                ]
                if len(healthy) < expect_backends:
                    last = (f"{len(healthy)}/{expect_backends} "
                            "backends healthy")
                    time.sleep(0.1)
                    continue
            return body
        last = f"unhealthy response: {response!r}"
        time.sleep(0.1)
    raise RuntimeError(f"{spec} not healthy within {timeout_s:.0f}s: {last}")
