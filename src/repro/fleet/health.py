"""Active health probing with exponential backoff.

The router does not wait for live traffic to discover that a backend
died or recovered: a prober thread sends out-of-band ``health``
round-trips on its own schedule.  Probe results feed the same
per-backend :class:`~repro.fleet.breaker.CircuitBreaker` live traffic
feeds, which yields two properties worth spelling out:

* **Recovery needs no client traffic.**  A breaker in *half-open*
  admits a bounded probe budget; the prober's probe consumes one of
  those slots (it calls ``allow()`` like any other caller).  A
  recovered backend is detected, its breaker closed, and the ring
  entry warmed before the next client request arrives.
* **Silent death is detected early.**  Probe failures against a
  *closed* breaker count toward the failure threshold exactly like
  request failures, so a backend that black-holes traffic trips its
  breaker within ``failure_threshold`` probes even if no client
  touches it.

While a backend stays down, the probe interval doubles per consecutive
failure (``interval_s`` up to ``max_interval_s``) — a dead backend
costs one connect timeout per backoff period, not per second,
mirroring the breaker's own exponential cooldown.  The first success
snaps the interval back to the base.

The scheduling core (:meth:`HealthProber.step`) is a pure function of
an injected clock, so tests drive it tick-by-tick with fake probes —
the thread wrapper just loops ``step`` against real time.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional

from repro.fleet.breaker import CircuitBreaker
from repro.fleet.client import BackendClient


class _ProbeState:
    __slots__ = ("healthy", "interval", "next_due")

    def __init__(self, interval: float):
        self.healthy: Optional[bool] = None  # unknown until first probe
        self.interval = interval
        self.next_due = 0.0  # probe immediately on start


class HealthProber:
    """Background health probes for a set of backends."""

    def __init__(self,
                 clients: Dict[str, BackendClient],
                 breakers: Dict[str, CircuitBreaker],
                 interval_s: float = 0.5,
                 max_interval_s: float = 10.0,
                 probe_timeout_s: float = 1.0,
                 on_change: Optional[Callable[[str, bool], Any]] = None,
                 clock: Callable[[], float] = time.monotonic,
                 probe: Optional[Callable[[str], bool]] = None):
        if interval_s <= 0 or max_interval_s < interval_s:
            raise ValueError("need 0 < interval_s <= max_interval_s")
        self.interval_s = interval_s
        self.max_interval_s = max_interval_s
        self.probe_timeout_s = probe_timeout_s
        self._clients = clients
        self._breakers = breakers
        self._on_change = on_change
        self._clock = clock
        self._probe = probe if probe is not None else self._probe_tcp
        self._lock = threading.Lock()
        self._states: Dict[str, _ProbeState] = {
            name: _ProbeState(interval_s) for name in clients
        }
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def _probe_tcp(self, name: str) -> bool:
        return self._clients[name].probe(timeout_s=self.probe_timeout_s)

    # -- membership --------------------------------------------------------

    def forget(self, name: str) -> None:
        """Stop probing a backend (it was drained out of the ring)."""
        with self._lock:
            self._states.pop(name, None)

    def is_healthy(self, name: str) -> Optional[bool]:
        """Latest probe verdict (None = not yet probed / unknown)."""
        with self._lock:
            state = self._states.get(name)
            return state.healthy if state is not None else None

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        with self._lock:
            return {
                name: {"healthy": state.healthy,
                       "probe_interval_s": round(state.interval, 3)}
                for name, state in sorted(self._states.items())
            }

    # -- the scheduling core (thread-free, fake-clock testable) ------------

    def step(self, now: Optional[float] = None) -> List[str]:
        """Probe every backend whose probe is due; returns the names
        probed.  Thread-safe; never raises on probe failure."""
        if now is None:
            now = self._clock()
        with self._lock:
            due = [name for name, state in self._states.items()
                   if now >= state.next_due]
        probed = []
        for name in due:
            breaker = self._breakers.get(name)
            if breaker is not None and not breaker.allow():
                # Open breaker (or exhausted half-open budget): probing
                # would be refused admission anyway.  Check back after
                # the current backoff interval; the breaker's own
                # cooldown decides when half-open re-admits us.
                with self._lock:
                    state = self._states.get(name)
                    if state is not None:
                        state.next_due = now + state.interval
                continue
            ok = False
            try:
                ok = bool(self._probe(name))
            except Exception:  # noqa: BLE001 - a probe must never
                ok = False  # take the prober down
            probed.append(name)
            if breaker is not None:
                if ok:
                    breaker.record_success()
                else:
                    breaker.record_failure()
            changed = False
            with self._lock:
                state = self._states.get(name)
                if state is None:  # forgotten mid-probe
                    continue
                changed = state.healthy is not ok and state.healthy is not None
                first = state.healthy is None
                state.healthy = ok
                if ok:
                    state.interval = self.interval_s
                else:
                    state.interval = min(state.interval * 2,
                                         self.max_interval_s)
                state.next_due = now + state.interval
            if (changed or first) and self._on_change is not None:
                self._on_change(name, ok)
        return probed

    # -- the thread wrapper ------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-fleet-prober")
        self._thread.start()

    def _run(self) -> None:
        tick = min(0.1, self.interval_s / 2)
        while not self._stop.is_set():
            self.step()
            self._stop.wait(tick)

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
