"""Consistent hashing: which backend owns a request digest.

The router keys every engine request by its content digest
(:func:`repro.api.content_digest` over ``{"op", "params"}``) and maps
the digest onto a ring of backends with the classic
virtual-node construction: each backend contributes ``vnodes`` points
on a 2^64 ring (SHA-256 of ``"name#i"``), and a key is owned by the
first point clockwise from the key's own hash.

Why this instead of ``hash(key) % n``:

* **Stability under churn** — draining or losing one backend of N
  remaps only ~1/N of the key space; a modulus remaps nearly all of
  it, which would empty every backend's single-flight/cache locality
  at exactly the moment the fleet is degraded.
* **A natural failover order** — walking clockwise past the owner
  yields each remaining backend exactly once (:meth:`HashRing.lookup`
  deduplicates vnodes), so "owner, then successor, then..." is a
  deterministic retry itinerary that every router replica would agree
  on.

Pure data structure: no sockets, no clock, no randomness beyond the
hash itself — property-tested directly.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Tuple

#: Default virtual nodes per backend.  Enough that a 3-backend ring
#: splits within a few percent of evenly; cheap enough to rebuild on
#: every membership change (rebuilds are rare: join/drain/death).
DEFAULT_VNODES = 64


def _point(label: str) -> int:
    """A stable position on the 2^64 ring."""
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """An immutable-feeling consistent-hash ring over backend names.

    Mutations (:meth:`add` / :meth:`remove`) rebuild the sorted point
    list; lookups are ``O(log(n * vnodes))`` bisects.  Not thread-safe
    by itself — the router serializes membership changes under its own
    lock and lookups tolerate a stale snapshot (a request routed to a
    just-drained backend is caught by the retry layer).
    """

    def __init__(self, vnodes: int = DEFAULT_VNODES):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._points: List[Tuple[int, str]] = []  # sorted (position, name)
        self._keys: List[int] = []  # positions only, for bisect
        self._members: Dict[str, bool] = {}

    # -- membership --------------------------------------------------------

    def add(self, name: str) -> None:
        if not name:
            raise ValueError("backend name must be non-empty")
        if name in self._members:
            return
        self._members[name] = True
        self._rebuild()

    def remove(self, name: str) -> None:
        if name not in self._members:
            return
        del self._members[name]
        self._rebuild()

    def _rebuild(self) -> None:
        points = [
            (_point(f"{name}#{i}"), name)
            for name in self._members
            for i in range(self.vnodes)
        ]
        points.sort()
        self._points = points
        self._keys = [pos for pos, _ in points]

    @property
    def members(self) -> List[str]:
        return sorted(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, name: str) -> bool:
        return name in self._members

    # -- lookup ------------------------------------------------------------

    def lookup(self, key: str) -> List[str]:
        """The failover itinerary for ``key``: owner first, then each
        remaining backend in clockwise vnode order, each exactly once.

        Empty list when the ring is empty (total outage — the router
        then falls back to sequential in-process execution).
        """
        if not self._points:
            return []
        start = bisect.bisect_left(self._keys, _point(key))
        order: List[str] = []
        seen = set()
        n = len(self._points)
        for i in range(n):
            name = self._points[(start + i) % n][1]
            if name not in seen:
                seen.add(name)
                order.append(name)
                if len(seen) == len(self._members):
                    break
        return order

    def owner(self, key: str) -> str:
        """The single owning backend (raises on an empty ring)."""
        order = self.lookup(key)
        if not order:
            raise LookupError("hash ring is empty")
        return order[0]

    def spread(self, keys: List[str]) -> Dict[str, int]:
        """Owner histogram for a key sample (balance diagnostics)."""
        out: Dict[str, int] = {name: 0 for name in self._members}
        for key in keys:
            out[self.owner(key)] += 1
        return out
