"""The router's transport to one backend: NDJSON over a short-lived
TCP connection.

One connection per call, by design.  The router's failure model is
"backends die at any instant, including mid-response" (the fleet smoke
test ``kill -9``'s one mid-burst); connection-per-call means every
failure surfaces at a single, well-defined point in exactly one
request, typed by *when* it happened:

* ``connect`` — could not reach the backend at all.  Nothing was sent;
  always safe to retry elsewhere.
* ``timeout`` — connected, but no full response within the budget.
* ``closed`` — the connection died mid-exchange (the backend was
  killed under the request).

All three are transport failures; the facade call is deterministic and
side-effect-free, so the router retries every one of them on the next
backend in the itinerary.  (Classic idempotency hand-wringing about
``closed`` — "did the work happen?" — does not apply: even if it did,
re-doing it elsewhere yields the identical answer.)
"""

from __future__ import annotations

import socket
from typing import Any, Dict, Optional

from repro.serve.protocol import decode_response, request_line

#: Failure kinds, ordered by how much of the exchange completed.
FAIL_CONNECT = "connect"
FAIL_TIMEOUT = "timeout"
FAIL_CLOSED = "closed"


class BackendError(Exception):
    """A transport-level failure talking to one backend."""

    def __init__(self, kind: str, backend: str, message: str):
        super().__init__(f"[{backend}] {kind}: {message}")
        self.kind = kind
        self.backend = backend


class BackendClient:
    """Issues single requests to one ``host:port`` backend."""

    def __init__(self, name: str, host: str, port: int,
                 connect_timeout_s: float = 1.0):
        self.name = name
        self.host = host
        self.port = port
        self.connect_timeout_s = connect_timeout_s

    def call(self, op: str, params: Optional[Dict[str, Any]] = None,
             request_id: Any = None, deadline_ms: Optional[float] = None,
             timeout_s: float = 30.0) -> Dict[str, Any]:
        """One request → the decoded response document.

        Raises :class:`BackendError` on transport failure; protocol-
        level errors (``ok: false`` responses) are returned, not
        raised — the caller decides which codes are retryable.
        """
        line = request_line(op, params, request_id=request_id,
                            deadline_ms=deadline_ms)
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout_s)
        except (socket.timeout, OSError) as err:
            raise BackendError(FAIL_CONNECT, self.name, str(err)) from None
        try:
            sock.settimeout(max(0.01, timeout_s))
            try:
                sock.sendall(line)
                buf = b""
                while b"\n" not in buf:
                    chunk = sock.recv(65536)
                    if not chunk:
                        raise BackendError(
                            FAIL_CLOSED, self.name,
                            "connection closed before a full response "
                            "(backend died mid-request?)")
                    buf += chunk
            except socket.timeout:
                raise BackendError(
                    FAIL_TIMEOUT, self.name,
                    f"no response within {timeout_s:.3f}s") from None
            except BackendError:
                raise
            except OSError as err:
                raise BackendError(FAIL_CLOSED, self.name,
                                   str(err)) from None
        finally:
            try:
                sock.close()
            except OSError:
                pass
        return decode_response(buf.split(b"\n", 1)[0])

    def probe(self, timeout_s: float = 1.0) -> bool:
        """One ``health`` round-trip; True iff the backend answered ok."""
        try:
            response = self.call("health", timeout_s=timeout_s)
        except (BackendError, ValueError):
            return False
        return bool(response.get("ok"))
