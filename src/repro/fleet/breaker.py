"""Per-backend circuit breaker: closed → open → half-open → closed.

The router keeps one breaker per backend.  Its job is to convert a
*pattern* of failures into a *decision* to stop sending traffic — so a
dead backend costs one connect timeout per cooldown period instead of
one per request — and then to re-admit traffic gradually, through a
bounded probe budget, so recovery cannot be trampled by a thundering
herd of retries.

States:

* **closed** — normal operation.  Failures are counted in a sliding
  logical window; ``failure_threshold`` consecutive failures trip the
  breaker to *open* (a success resets the streak).
* **open** — all admission refused for a cooldown period.  Each
  consecutive trip doubles the cooldown (``cooldown_s`` up to
  ``max_cooldown_s``) — the same exponential-backoff discipline the
  health prober uses, so a flapping backend converges to quiet.
* **half-open** — after the cooldown, up to ``probe_budget`` requests
  are admitted as probes; any failure re-opens (doubling the
  cooldown), while ``probe_budget`` successes close the breaker and
  reset the cooldown.

The clock is injected (``clock=time.monotonic`` by default) so the
whole state machine is unit-testable with a fake clock — no sockets,
no sleeps, no real time.  Thread-safe: every transition happens under
one lock, and the half-open probe budget is enforced atomically (the
Hypothesis property test in ``tests/test_fleet_breaker.py`` hammers
exactly that invariant: never more than ``probe_budget`` admissions
per half-open episode).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Optional

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

STATES = (CLOSED, OPEN, HALF_OPEN)


class CircuitBreaker:
    """One backend's admission gate.

    Usage::

        if breaker.allow():
            try: ... ; breaker.record_success()
            except TransportError: breaker.record_failure()
        else:
            ...  # skip this backend in the failover itinerary

    ``allow()`` consumes a probe slot when half-open.  The budget is
    per half-open *episode*: slots are never returned, so at most
    ``probe_budget`` requests are admitted between entering half-open
    and the next transition out of it, however admissions and outcome
    reports interleave.
    """

    def __init__(self,
                 failure_threshold: int = 3,
                 cooldown_s: float = 0.5,
                 max_cooldown_s: float = 30.0,
                 probe_budget: int = 1,
                 clock: Callable[[], float] = time.monotonic,
                 on_transition: Optional[
                     Callable[[str, str], Any]] = None):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_s <= 0 or max_cooldown_s < cooldown_s:
            raise ValueError("need 0 < cooldown_s <= max_cooldown_s")
        if probe_budget < 1:
            raise ValueError("probe_budget must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.max_cooldown_s = max_cooldown_s
        self.probe_budget = probe_budget
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0  # consecutive, while closed
        self._trips = 0  # consecutive opens; drives exponential cooldown
        self._opened_at = 0.0
        self._probes_out = 0  # admitted but unreported, while half-open

    # -- introspection -----------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            return self._effective_state()

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "state": self._effective_state(),
                "consecutive_failures": self._failures,
                "trips": self._trips,
                "cooldown_s": self._current_cooldown(),
            }

    # -- internals (call with lock held) -----------------------------------

    def _current_cooldown(self) -> float:
        if self._trips == 0:
            return self.cooldown_s
        return min(self.cooldown_s * (2 ** (self._trips - 1)),
                   self.max_cooldown_s)

    def _effective_state(self) -> str:
        """OPEN lazily becomes HALF_OPEN once the cooldown elapses."""
        if self._state == OPEN and (
                self._clock() - self._opened_at >= self._current_cooldown()):
            self._transition(HALF_OPEN)
            self._probes_out = 0
        return self._state

    def _transition(self, to: str) -> None:
        frm, self._state = self._state, to
        if frm != to and self._on_transition is not None:
            self._on_transition(frm, to)

    def _trip(self) -> None:
        self._trips += 1
        self._opened_at = self._clock()
        self._failures = 0
        self._transition(OPEN)

    # -- the protocol ------------------------------------------------------

    def allow(self) -> bool:
        """May a request be sent to this backend right now?

        Closed: always.  Open: never.  Half-open: only while the probe
        budget lasts — each ``True`` consumes one probe slot.
        """
        with self._lock:
            state = self._effective_state()
            if state == CLOSED:
                return True
            if state == OPEN:
                return False
            if self._probes_out >= self.probe_budget:
                return False
            self._probes_out += 1
            return True

    def record_success(self) -> None:
        with self._lock:
            state = self._effective_state()
            if state == CLOSED:
                self._failures = 0
                return
            if state == HALF_OPEN:
                # One full budget of successes closes the breaker.  A
                # reported success does NOT free an admission slot: the
                # budget bounds total admissions per half-open episode,
                # not concurrency — otherwise a fast backend could be
                # probed more than ``probe_budget`` times before the
                # episode resolves.
                self._failures += 1
                if self._failures >= self.probe_budget:
                    self._failures = 0
                    self._trips = 0
                    self._transition(CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            state = self._effective_state()
            if state == CLOSED:
                self._failures += 1
                if self._failures >= self.failure_threshold:
                    self._trip()
            elif state == HALF_OPEN:
                # A failed probe re-opens immediately, cooldown doubled.
                self._trip()

    def force_open(self) -> None:
        """Administrative trip (used when a drain wants traffic stopped
        before the backend actually goes away)."""
        with self._lock:
            self._trip()
