"""One versioned envelope for every JSON report artifact.

Before this module each reporting layer invented its own top-level
shape: the perf suite wrote ``{"schema_version": 1, "cases": ...}``
(``perf/bench.py``), the sweep driver wrote ``{"schema_version": 1,
"grid": ..., "points": ...}`` (``scale/report.py``), and the chaos
harness had no JSON form at all (``harness/report.py`` rendered text
only).  Every consumer — ``bench --compare``, ``sweep --min-hit-rate``,
CI artifact tooling — had to know which shape it was holding before it
could even check the version.

The envelope unifies them::

    {
      "schema_version": 1,        # version of the envelope contract
      "kind": "perf-bench",       # what the body is
      "body": { ... }             # the kind-specific payload
    }

Rules:

* ``schema_version`` versions the *envelope*; kind-specific payload
  evolution is the body's business (bodies may carry their own finer
  versioning if they need it).
* ``body`` is always a JSON object.  Wall-clock and other
  run-to-run-variable measurements live under ``body["wall"]`` by
  convention; :func:`strip_wall` removes exactly that key, which is how
  byte-identity contracts are stated uniformly across kinds.
* Readers go through :func:`unwrap`, which raises
  :class:`EnvelopeError` on anything that is not a valid envelope of
  the expected kind.  (The pre-envelope perf/sweep report shapes were
  accepted for exactly one release, with a ``DeprecationWarning``;
  that migration window is over and the shims are gone — regenerate
  any remaining pre-envelope baseline.)
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

#: Version of the envelope contract itself.
SCHEMA_VERSION = 1

#: The report kinds this repository produces.
KIND_PERF = "perf-bench"
KIND_SWEEP = "sweep"
KIND_ROBUSTNESS = "robustness"
KIND_SERVE = "serve-bench"
KIND_FLEET = "fleet-bench"
KIND_OBS = "obs-bench"
KIND_SCALE = "scale-bench"
KIND_CACHE = "cache-bench"

KNOWN_KINDS = (KIND_PERF, KIND_SWEEP, KIND_ROBUSTNESS, KIND_SERVE,
               KIND_FLEET, KIND_OBS, KIND_SCALE, KIND_CACHE)


class EnvelopeError(ValueError):
    """A report document that is not a usable envelope.  CLIs map this
    to a one-line exit-2 diagnostic instead of a traceback."""


def wrap(kind: str, body: Dict[str, Any]) -> Dict[str, Any]:
    """Build an envelope around a kind-specific body."""
    if kind not in KNOWN_KINDS:
        raise ValueError(
            f"unknown report kind {kind!r}; known: {', '.join(KNOWN_KINDS)}"
        )
    if not isinstance(body, dict):
        raise TypeError(f"body must be a dict, got {type(body).__name__}")
    return {"schema_version": SCHEMA_VERSION, "kind": kind, "body": body}


def validate_envelope(obj: Any, kind: Optional[str] = None) -> List[str]:
    """Schema-check an envelope; returns problems (empty = valid).

    The shared validator every reader uses: ``bench --compare`` and
    ``sweep --min-hit-rate`` both call this before touching the body.
    """
    if not isinstance(obj, dict):
        return [f"report must be a JSON object, got {type(obj).__name__}"]
    problems: List[str] = []
    version = obj.get("schema_version")
    if not isinstance(version, int) or isinstance(version, bool):
        problems.append("'schema_version' missing or not an integer")
    elif version > SCHEMA_VERSION:
        problems.append(
            f"envelope schema_version {version} is newer than this "
            f"reader understands ({SCHEMA_VERSION})"
        )
    found_kind = obj.get("kind")
    if not isinstance(found_kind, str):
        problems.append("'kind' missing or not a string")
    elif found_kind not in KNOWN_KINDS:
        problems.append(
            f"unknown report kind {found_kind!r}; "
            f"known: {', '.join(KNOWN_KINDS)}"
        )
    elif kind is not None and found_kind != kind:
        problems.append(f"expected kind {kind!r}, found {found_kind!r}")
    if not isinstance(obj.get("body"), dict):
        problems.append("'body' missing or not an object")
    return problems


def unwrap(obj: Any, kind: str) -> Dict[str, Any]:
    """Return the body of an envelope of the given kind.

    Anything that fails :func:`validate_envelope` raises
    :class:`EnvelopeError` — including the long-retired pre-envelope
    perf/sweep shapes (their one-release migration shim was removed;
    regenerate the report).
    """
    problems = validate_envelope(obj, kind)
    if problems:
        raise EnvelopeError(problems[0])
    return obj["body"]


def strip_wall(body: Dict[str, Any]) -> Dict[str, Any]:
    """The deterministic body: everything except the ``"wall"`` key."""
    return {k: v for k, v in body.items() if k != "wall"}


def dumps(obj: Dict[str, Any]) -> str:
    """The canonical on-disk serialization (stable key order)."""
    return json.dumps(obj, indent=2, sort_keys=True) + "\n"
