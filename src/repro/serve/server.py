"""A long-lived concurrent analysis service over :mod:`repro.api`.

Three layers:

* :class:`AnalysisService` — socket-free engine host: a thread pool
  over the facade with **bounded admission** (explicit ``overloaded``
  rejection once ``workers + backlog`` requests are in the house —
  never unbounded queueing), **per-request deadlines** (a waiter whose
  deadline passes gets ``deadline_exceeded``; when *every* waiter of a
  computation has given up — or every waiter's deadline has already
  expired by the time a worker picks the job up — the computation is
  cancelled before it touches the engine), **single-flight coalescing**
  (identical in-flight requests, keyed on the content-addressed digest
  of ``(op, params)``, compute once and fan the result out to every
  waiter), and **graceful drain** (new engine work refused with
  ``shutting_down``; in-flight work completes and is delivered).

  Two executors host the actual engine call.  The default ``thread``
  executor computes inline on the pool thread — cheap, but CPU-bound
  work is GIL-serialized and an engine crash is a process crash.  The
  ``process`` executor (:mod:`repro.fleet.pool`) checks a worker
  *process* out of a respawning farm: CPU-bound work escapes the GIL,
  a segfaulted/killed worker yields a typed ``engine_error`` response
  (never a dropped connection) and is respawned, and cancellation is
  real — an abandoned computation's worker is terminated mid-flight.
* :class:`NdjsonServer` — a reusable NDJSON/TCP front: one reader
  thread per connection, one request processed per connection at a
  time, responses written in request order, graceful drain.  The shard
  router (:mod:`repro.fleet.router`) subclasses it.
* :class:`ReproServer` — the NDJSON front bound to an
  :class:`AnalysisService` (the ``repro serve`` process).

Correctness contract: a response body is exactly the facade result's
``to_dict()``, so a served answer is byte-identical (modulo ``wall``)
to a single-shot ``repro <op> --json`` invocation — the hosting layer
preserves the engine's output-equivalence guarantee *whatever the
executor*.  Coalescing is sound for the same reason the result cache
is: facade calls are deterministic modulo wall, so one computation
*is* every identical computation.

Because all thread-executor requests share one process, the
:mod:`repro.perf` caches (automata derivations, interned regexes) stay
warm across requests; process-executor workers are forked from the
serving process and inherit whatever was warm at spawn time.

Observability: with a recorder attached the service emits
``serve.request`` spans on the ``PID_SERVE`` track (one lane per pool
thread) and ``serve.request.*`` counters; the same counters back the
``stats`` op, which also surfaces queue-wait aggregates (how long
accepted requests sat in admission before a worker picked them up).
Chaos mode (:mod:`repro.serve.chaos`) injects seeded rejections and
delays in front of real work to exercise the backpressure and deadline
paths.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro import api
from repro.serve.chaos import FAULT_REJECT, RequestFaultPlan
from repro.serve.protocol import (
    CONTROL_OPS,
    ERR_BAD_REQUEST,
    ERR_DEADLINE,
    ERR_INTERNAL,
    ERR_OVERLOADED,
    ERR_SHUTTING_DOWN,
    ERROR_CODES,
    ProtocolError,
    Request,
    encode,
    error_response,
    ok_response,
    parse_request,
)

#: Executor kinds for :class:`ServeConfig.executor`.
EXECUTOR_THREAD = "thread"
EXECUTOR_PROCESS = "process"
EXECUTORS = (EXECUTOR_THREAD, EXECUTOR_PROCESS)


@dataclass(frozen=True)
class ServeConfig:
    """Service + server configuration (the ``repro serve`` flags)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 → ephemeral; the bound port is printed/returned
    workers: int = 4
    backlog: int = 16  # admission beyond the workers; 429 past this
    default_deadline_ms: float = 30_000.0
    drain_timeout: float = 30.0
    executor: str = EXECUTOR_THREAD  # "thread" | "process"
    chaos: Optional[RequestFaultPlan] = None
    recorder: Any = None
    #: ``host:port`` of a ``repro cache-serve`` instance.  Engine
    #: results are looked up there before computing and published
    #: after, so shards sharing one cache server warm each other.  A
    #: dead or poisoned server silently degrades to computing locally.
    cache_server: Optional[str] = None


class _Flight:
    """One in-flight computation; every coalesced waiter shares it."""

    __slots__ = ("key", "op", "event", "cancel", "waiters", "outcome",
                 "submitted", "latest_deadline")

    def __init__(self, key: str, op: str, deadline_end: float):
        self.key = key
        self.op = op
        self.event = threading.Event()
        self.cancel = threading.Event()
        self.waiters = 1
        # (True, result_dict) | (False, error_code, message)
        self.outcome: Optional[Tuple] = None
        self.submitted = time.perf_counter()
        # The latest deadline over every waiter: when it has passed,
        # nobody can still use the result — the compute is doomed.
        self.latest_deadline = deadline_end


def engine_call(op: str, params: Dict[str, Any]) -> Dict[str, Any]:
    """Dispatch one engine op onto the facade; raises on bad params.

    Module-level (not a service method) so the process-pool worker
    (:mod:`repro.fleet.pool`) executes exactly the same dispatch — the
    executors cannot drift apart semantically.
    """
    params = dict(params)
    decls = tuple(params.pop("decls", ()))
    if op == "run":
        source = _required_str(params, "source")
        expr = _required_str(params, "expr")
        options = _options(api.RunOptions, params)
        return api.run(source, expr, options, decls=decls).to_dict()
    if op == "analyze":
        source = _required_str(params, "source")
        function = _required_str(params, "function")
        assume_sapp = bool(params.pop("assume_sapp", False))
        _reject_unknown(params, "analyze")
        return api.analyze(source, function, decls=decls,
                           assume_sapp=assume_sapp).to_dict()
    if op == "transform":
        source = _required_str(params, "source")
        function = _required_str(params, "function")
        options = _options(api.TransformOptions, params)
        return api.transform(source, function, options,
                             decls=decls).to_dict()
    if op == "sweep":
        grid = _required_str(params, "grid")
        options = _options(api.SweepOptions, params)
        if options.workers != 0:
            raise api.BadRequest(
                "serve executes sweeps inline; params.workers must "
                "be 0 (the service's own pool is the concurrency)"
            )
        return api.sweep(grid, options).to_dict()
    raise api.BadRequest(f"unknown engine op {op!r}")


class AnalysisService:
    """The engine host: worker pool + admission + coalescing + drain."""

    def __init__(self, config: ServeConfig):
        if config.executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {config.executor!r}; "
                f"choose from: {', '.join(EXECUTORS)}"
            )
        self.config = config
        self._executor = ThreadPoolExecutor(
            max_workers=config.workers, thread_name_prefix="repro-serve"
        )
        self._engine = None
        if config.executor == EXECUTOR_PROCESS:
            # Imported lazily: repro.fleet imports repro.serve, so the
            # module-level direction must stay serve ← fleet.
            from repro.fleet.pool import ProcessEngine

            self._engine = ProcessEngine(
                workers=config.workers,
                on_count=self._count,
            )
        self._op_cache = None
        if config.cache_server:
            self._op_cache = api.open_op_cache(config.cache_server)
        self._slots = threading.Semaphore(config.workers + config.backlog)
        self._flights: Dict[str, _Flight] = {}
        self._flights_lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._obs_lock = threading.Lock()
        self._tids: Dict[int, int] = {}
        self._queue_wait = {"count": 0, "total_ms": 0.0, "max_ms": 0.0}
        self._draining = False
        self._started = time.perf_counter()

    # -- bookkeeping -------------------------------------------------------

    def _count(self, name: str, n: int = 1) -> None:
        with self._obs_lock:
            self._counters[name] = self._counters.get(name, 0) + n
            if self.config.recorder is not None:
                self.config.recorder.count(name, n)

    def _observe_queue_wait(self, waited_ms: float) -> None:
        with self._obs_lock:
            stats = self._queue_wait
            stats["count"] += 1
            stats["total_ms"] += waited_ms
            stats["max_ms"] = max(stats["max_ms"], waited_ms)

    def _track(self) -> int:
        """Dense per-pool-thread track id for the PID_SERVE lane."""
        ident = threading.get_ident()
        with self._obs_lock:
            if ident not in self._tids:
                self._tids[ident] = len(self._tids)
            return self._tids[ident]

    def _span(self, ph: str, tid: int, args: Optional[dict] = None) -> None:
        recorder = self.config.recorder
        if recorder is None:
            return
        from repro.obs.recorder import PID_SERVE

        with self._obs_lock:
            recorder.event("serve.request", "serve", ph=ph,
                           pid=PID_SERVE, tid=tid, args=args or {})

    @property
    def in_flight(self) -> int:
        with self._flights_lock:
            return len(self._flights)

    @property
    def draining(self) -> bool:
        return self._draining

    def counters(self) -> Dict[str, int]:
        with self._obs_lock:
            return dict(sorted(self._counters.items()))

    def queue_wait_stats(self) -> Dict[str, float]:
        """Aggregate admission-queue wait: how long accepted engine
        requests sat before a worker started computing them."""
        with self._obs_lock:
            stats = dict(self._queue_wait)
        count = stats.pop("count")
        return {
            "count": count,
            "mean_ms": round(stats["total_ms"] / count, 3) if count else 0.0,
            "max_ms": round(stats["max_ms"], 3),
        }

    # -- request handling --------------------------------------------------

    def handle(self, request: Request) -> Dict[str, Any]:
        """Serve one request; always returns a response document."""
        start = time.perf_counter()
        if request.op in CONTROL_OPS:
            self._count("serve.control")
            if request.op == "drain":
                self.begin_drain()
                body: Dict[str, Any] = {"kind": "drain",
                                        "status": "draining",
                                        "in_flight": self.in_flight}
            elif request.op == "health":
                body = self._health()
            else:
                body = self._stats()
            return ok_response(request.id, request.op, body,
                              (time.perf_counter() - start) * 1000.0)
        if self._draining:
            self._count("serve.request.shutting_down")
            return error_response(
                request.id, ERR_SHUTTING_DOWN,
                "server is draining; no new work accepted",
                (time.perf_counter() - start) * 1000.0,
            )
        delay_ms = 0.0
        if self.config.chaos is not None:
            fault = self.config.chaos.on_request()
            if fault is not None:
                self._count("serve.request.fault_injected")
                kind, value = fault
                if kind == FAULT_REJECT:
                    self._count("serve.request.rejected")
                    return error_response(
                        request.id, ERR_OVERLOADED,
                        "chaos fault: synthetic admission rejection; "
                        "retry later",
                        (time.perf_counter() - start) * 1000.0,
                        fault=kind,
                    )
                delay_ms = value
        deadline_s = (request.deadline_ms
                      if request.deadline_ms is not None
                      else self.config.default_deadline_ms) / 1000.0
        deadline_end = start + deadline_s
        key = api.content_digest({"op": request.op, "params": request.params})
        with self._flights_lock:
            flight = self._flights.get(key)
            if flight is not None:
                flight.waiters += 1
                flight.latest_deadline = max(flight.latest_deadline,
                                             deadline_end)
                self._count("serve.request.coalesced")
            else:
                if not self._slots.acquire(blocking=False):
                    self._count("serve.request.rejected")
                    return error_response(
                        request.id, ERR_OVERLOADED,
                        f"admission queue full "
                        f"({self.config.workers} worker(s) + "
                        f"{self.config.backlog} queued); retry later",
                        (time.perf_counter() - start) * 1000.0,
                    )
                flight = _Flight(key, request.op, deadline_end)
                self._flights[key] = flight
                self._count("serve.request.accepted")
                self._executor.submit(self._compute, flight,
                                      dict(request.params), delay_ms)
        finished = flight.event.wait(max(0.0,
                                         deadline_end - time.perf_counter()))
        if not finished:
            with self._flights_lock:
                flight.waiters -= 1
                if flight.waiters == 0 and not flight.event.is_set():
                    # Nobody is waiting any more: cancel the compute
                    # cooperatively (it checks before touching the
                    # engine, and the process executor terminates a
                    # worker already computing).
                    flight.cancel.set()
            self._count("serve.request.deadline_exceeded")
            return error_response(
                request.id, ERR_DEADLINE,
                f"deadline of {deadline_s * 1000.0:.0f}ms exceeded",
                (time.perf_counter() - start) * 1000.0,
            )
        with self._flights_lock:
            flight.waiters -= 1
        outcome = flight.outcome
        wall_ms = (time.perf_counter() - start) * 1000.0
        assert outcome is not None
        if outcome[0]:
            self._count("serve.request.ok")
            return ok_response(request.id, request.op, outcome[1], wall_ms)
        _, code, message = outcome
        self._count(f"serve.request.error.{code}")
        return error_response(request.id, code, message, wall_ms)

    # -- the pool side -----------------------------------------------------

    def _compute(self, flight: _Flight, params: Dict[str, Any],
                 delay_ms: float) -> None:
        tid = self._track()
        queued_ms = (time.perf_counter() - flight.submitted) * 1000.0
        self._observe_queue_wait(queued_ms)
        self._span("B", tid, {"op": flight.op, "key": flight.key[:12],
                              "queued_ms": round(queued_ms, 3)})
        status = "ok"
        try:
            if delay_ms:
                # Chaos delay; interruptible so a cancelled flight does
                # not hold its admission slot for the full delay.
                flight.cancel.wait(delay_ms / 1000.0)
            if flight.cancel.is_set():
                status = "cancelled"
                self._count("serve.request.cancelled")
                outcome: Tuple = (False, ERR_DEADLINE,
                                  "cancelled before execution: every "
                                  "waiter's deadline expired")
            elif time.perf_counter() >= flight.latest_deadline:
                # Doomed while queued: every waiter's deadline already
                # passed, so computing would burn a worker on a result
                # nobody can receive.
                status = "expired_in_queue"
                self._count("serve.request.cancelled")
                self._count("serve.request.expired_in_queue")
                outcome = (False, ERR_DEADLINE,
                           "not executed: request deadline expired "
                           "while queued in admission")
            else:
                outcome = (True, self._cached_engine_call(flight, params))
        except api.ApiError as err:
            status = err.code
            code = err.code if err.code in ERROR_CODES else ERR_INTERNAL
            outcome = (False, code, str(err))
        except (TypeError, ValueError) as err:
            status = ERR_BAD_REQUEST
            outcome = (False, ERR_BAD_REQUEST, f"bad params: {err}")
        except Exception as err:  # noqa: BLE001 - a request must never
            status = ERR_INTERNAL  # take the pool down
            outcome = (False, ERR_INTERNAL,
                       f"{type(err).__name__}: {err}")
        finally:
            with self._flights_lock:
                del self._flights[flight.key]
                flight.outcome = outcome
            flight.event.set()
            self._slots.release()
            self._span("E", tid, {"op": flight.op, "status": status})

    def _cached_engine_call(self, flight: _Flight,
                            params: Dict[str, Any]) -> Dict[str, Any]:
        """The engine call behind the shared cache (when configured).

        The lookup runs *inside* the flight, after admission — so one
        network round-trip per coalesced group, and a hit still counts
        as this shard's computation for coalescing/slot purposes.  The
        op-cache client never raises; a sick cache tier degrades to
        computing.
        """
        if self._op_cache is not None:
            result = self._op_cache.get(flight.op, params)
            if result is not None:
                self._count("serve.cache.hits")
                return result
            self._count("serve.cache.misses")
        result = self._engine_call(flight, params)
        if self._op_cache is not None:
            self._op_cache.put(flight.op, params, result)
        return result

    def _engine_call(self, flight: _Flight,
                     params: Dict[str, Any]) -> Dict[str, Any]:
        """Execute the engine op on the configured executor."""
        if self._engine is not None:
            return self._engine.call(flight.op, params,
                                     cancel=flight.cancel)
        return engine_call(flight.op, params)

    def _health(self) -> Dict[str, Any]:
        return {
            "kind": "health",
            "status": "draining" if self._draining else "ok",
            "in_flight": self.in_flight,
        }

    def _stats(self) -> Dict[str, Any]:
        from repro.perf import cache_stats

        perf = {
            name: {"hits": stats["hits"], "misses": stats["misses"]}
            for name, stats in sorted(cache_stats().items())
            if stats["hits"] + stats["misses"]
        }
        body: Dict[str, Any] = {
            "kind": "stats",
            "status": "draining" if self._draining else "ok",
            "executor": self.config.executor,
            "workers": self.config.workers,
            "backlog": self.config.backlog,
            "default_deadline_ms": self.config.default_deadline_ms,
            "in_flight": self.in_flight,
            "counters": self.counters(),
            "queue_wait": self.queue_wait_stats(),
            "perf_caches": perf,
            "uptime_s": round(time.perf_counter() - self._started, 3),
        }
        if self.config.chaos is not None:
            body["chaos"] = self.config.chaos.describe()
        return body

    # -- lifecycle ---------------------------------------------------------

    def begin_drain(self) -> None:
        """Refuse new engine work; in-flight work keeps running."""
        self._draining = True

    def drain(self) -> None:
        """Block until every in-flight computation has completed."""
        self.begin_drain()
        self._executor.shutdown(wait=True)
        if self._engine is not None:
            self._engine.close()

    def close(self) -> None:
        self.drain()


def _required_str(params: Dict[str, Any], name: str) -> str:
    value = params.pop(name, None)
    if not isinstance(value, str) or not value:
        raise api.BadRequest(f"params.{name} (string) is required")
    return value


def _options(cls, params: Dict[str, Any]):
    """Build a facade options dataclass from the remaining params."""
    known = {f.name: f for f in dataclasses.fields(cls)}
    unknown = [k for k in params if k not in known]
    if unknown:
        raise api.BadRequest(
            f"unknown param(s): {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(known))}"
        )
    coerced = dict(params)
    if "transform" in coerced and isinstance(coerced["transform"], list):
        coerced["transform"] = tuple(coerced["transform"])
    try:
        return cls(**coerced)
    except TypeError as err:
        raise api.BadRequest(f"bad params: {err}") from None


def _reject_unknown(params: Dict[str, Any], op: str) -> None:
    if params:
        raise api.BadRequest(
            f"unknown param(s) for {op}: {', '.join(sorted(params))}"
        )


class NdjsonServer:
    """A reusable NDJSON/TCP front: accept loop, one reader thread per
    connection, graceful drain.  Subclasses implement
    :meth:`handle_request` (and may override the drain hooks)."""

    _ACCEPT_POLL = 0.2

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 drain_timeout: float = 30.0):
        self._host = host
        self._port = port
        self._drain_timeout = drain_timeout
        self._sock = None
        self._drain_requested = threading.Event()
        self._drained = threading.Event()
        self._conn_threads: list = []
        self._conn_lock = threading.Lock()

    # -- subclass hooks ----------------------------------------------------

    def handle_request(self, request: Request) -> Dict[str, Any]:
        """Serve one parsed request; must return a response document."""
        raise NotImplementedError

    def on_bad_request(self) -> None:
        """Counter hook for unparseable lines."""

    def on_drain_begin(self) -> None:
        """Runs when drain starts, before connections are joined —
        refuse new work here so a chatty client cannot stall drain."""

    def on_drain(self) -> None:
        """Release subclass resources; runs after connections drain."""

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """(host, port) actually bound; valid after :meth:`start`."""
        assert self._sock is not None, "server not started"
        return self._sock.getsockname()[:2]

    def start(self) -> Tuple[str, int]:
        import socket

        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self._host, self._port))
        sock.listen(64)
        sock.settimeout(self._ACCEPT_POLL)
        self._sock = sock
        return self.address

    def request_drain(self) -> None:
        """Ask the accept loop to stop and drain; idempotent, safe from
        signal handlers and other threads."""
        self._drain_requested.set()

    def serve_forever(self) -> None:
        """Accept connections until drain is requested, then drain:
        stop accepting, finish and deliver in-flight work, and return."""
        import socket as socket_mod

        if self._sock is None:
            self.start()
        try:
            while not self._drain_requested.is_set():
                try:
                    conn, _addr = self._sock.accept()
                except socket_mod.timeout:
                    continue
                except OSError:
                    break
                thread = threading.Thread(
                    target=self._handle_conn, args=(conn,), daemon=True
                )
                with self._conn_lock:
                    self._conn_threads.append(thread)
                thread.start()
        finally:
            self._drain()

    def _drain(self) -> None:
        self.on_drain_begin()
        deadline = time.monotonic() + self._drain_timeout
        with self._conn_lock:
            threads = list(self._conn_threads)
        for thread in threads:
            if thread is not threading.current_thread():
                thread.join(max(0.0, deadline - time.monotonic()))
        self.on_drain()
        if self._sock is not None:
            self._sock.close()
        self._drained.set()

    def stop(self, timeout: Optional[float] = None) -> bool:
        """Request drain and wait for :meth:`serve_forever` to finish
        (for embedders running it on another thread)."""
        self.request_drain()
        return self._drained.wait(timeout)

    # -- connections -------------------------------------------------------

    def _handle_conn(self, conn) -> None:
        import socket as socket_mod

        conn.settimeout(self._ACCEPT_POLL)
        buf = b""
        try:
            while True:
                try:
                    chunk = conn.recv(65536)
                except socket_mod.timeout:
                    if self._drain_requested.is_set():
                        break
                    continue
                except OSError:
                    break
                if not chunk:
                    break
                buf += chunk
                while b"\n" in buf:
                    line, buf = buf.split(b"\n", 1)
                    response = self._process_line(line)
                    if response:
                        try:
                            conn.sendall(response)
                        except OSError:
                            return
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _process_line(self, line: bytes) -> bytes:
        text = line.decode("utf-8", errors="replace").strip()
        if not text:
            return b""
        try:
            request = parse_request(text)
        except ProtocolError as err:
            self.on_bad_request()
            return encode(error_response(err.request_id, ERR_BAD_REQUEST,
                                         str(err)))
        return encode(self.handle_request(request))


class ReproServer(NdjsonServer):
    """The NDJSON/TCP front over an :class:`AnalysisService`."""

    def __init__(self, config: ServeConfig = ServeConfig()):
        super().__init__(host=config.host, port=config.port,
                         drain_timeout=config.drain_timeout)
        self.config = config
        self.service = AnalysisService(config)

    def handle_request(self, request: Request) -> Dict[str, Any]:
        if request.op == "drain":
            # A remote drain stops the accept loop too (the service
            # refuses new engine work the moment handle() sees the op).
            response = self.service.handle(request)
            self.request_drain()
            return response
        return self.service.handle(request)

    def on_bad_request(self) -> None:
        self.service._count("serve.request.bad_request")

    def on_drain_begin(self) -> None:
        self.service.begin_drain()

    def on_drain(self) -> None:
        self.service.drain()
