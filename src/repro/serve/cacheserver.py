"""``repro cache-serve`` — the fleet-shared result-cache service.

A small NDJSON/TCP server (same :class:`NdjsonServer` front, wire
format and lifecycle as ``repro serve``) over one content-addressed
entry store.  Sweep workers, serve shards and the router all read and
write through it (:mod:`repro.scale.cacheclient`), so one machine's
computation warms the whole fleet.

The server is deliberately dumb about *semantics*: keys are opaque
64-hex digests minted by the clients (stage fingerprint + key
material), and entries travel whole so their ``payload_sha256``
integrity hash is verified **on both directions of the wire** — a
``cache-put`` whose entry is corrupt or mis-keyed is refused with
``bad_request`` (one sick client cannot poison the shared store), and
clients re-verify every ``cache-get`` before trusting it (a poisoned
*server* degrades to a miss, never a wrong answer).

Ops: ``cache-get {key}`` → ``{found, entry}``; ``cache-put {key,
entry}`` → ``{stored}``; plus the standard ``health`` / ``stats`` /
``drain`` controls.  Engine ops get a typed ``bad_request`` — this is
a cache, point ``analyze`` at ``repro serve``.

Per the serve/fleet import-boundary rule, the store is opened through
the :func:`repro.api.open_cache_store` facade; this module never
imports the engine.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro import api
from repro.serve.protocol import (
    ERR_BAD_REQUEST,
    ERR_SHUTTING_DOWN,
    Request,
    error_response,
    ok_response,
)
from repro.serve.server import NdjsonServer

_KEY_LEN = 64
_HEX = set("0123456789abcdef")


@dataclass(frozen=True)
class CacheServeConfig:
    """Knobs for one ``repro cache-serve`` process."""

    host: str = "127.0.0.1"
    port: int = 0
    root: str = ".repro-cache"
    drain_timeout: float = 30.0
    recorder: Optional[Any] = None


def _valid_key(key: Any) -> bool:
    return (isinstance(key, str) and len(key) == _KEY_LEN
            and set(key) <= _HEX)


class CacheServer(NdjsonServer):
    """The NDJSON front over one shared entry store."""

    def __init__(self, config: CacheServeConfig = CacheServeConfig()):
        super().__init__(host=config.host, port=config.port,
                         drain_timeout=config.drain_timeout)
        self.config = config
        self._store = api.open_cache_store(config.root)
        self._store_lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._counters_lock = threading.Lock()
        self._draining = False
        self._started = time.perf_counter()

    def _count(self, name: str, value: int = 1) -> None:
        with self._counters_lock:
            self._counters[name] = self._counters.get(name, 0) + value
        if self.config.recorder is not None:
            self.config.recorder.count(name, value)

    def counters(self) -> Dict[str, int]:
        with self._counters_lock:
            return dict(self._counters)

    # -- request handling ---------------------------------------------------

    def handle_request(self, request: Request) -> Dict[str, Any]:
        start = time.perf_counter()
        if request.op == "health":
            return ok_response(request.id, "health", {
                "kind": "health",
                "status": "draining" if self._draining else "ok",
                "role": "cache",
            }, (time.perf_counter() - start) * 1000.0)
        if request.op == "stats":
            return ok_response(request.id, "stats", self._stats(),
                               (time.perf_counter() - start) * 1000.0)
        if request.op == "drain":
            self._draining = True
            self.request_drain()
            return ok_response(request.id, "drain", {"draining": True},
                               (time.perf_counter() - start) * 1000.0)
        if request.op == "cache-get":
            return self._get(request, start)
        if request.op == "cache-put":
            return self._put(request, start)
        self._count("cache.server.bad_request")
        return error_response(
            request.id, ERR_BAD_REQUEST,
            f"op {request.op!r} is not served here: this is a cache "
            "server (cache-get / cache-put / health / stats / drain)")

    def _get(self, request: Request, start: float) -> Dict[str, Any]:
        key = request.params.get("key")
        if not _valid_key(key):
            self._count("cache.server.bad_request")
            return error_response(request.id, ERR_BAD_REQUEST,
                                  "params.key (64-hex string) is required")
        with self._store_lock:
            entry = self._store.get_entry(key)
        self._count("cache.server.hits" if entry is not None
                    else "cache.server.misses")
        return ok_response(request.id, "cache-get",
                           {"found": entry is not None, "entry": entry},
                           (time.perf_counter() - start) * 1000.0)

    def _put(self, request: Request, start: float) -> Dict[str, Any]:
        if self._draining:
            return error_response(request.id, ERR_SHUTTING_DOWN,
                                  "cache server is draining")
        key = request.params.get("key")
        if not _valid_key(key):
            self._count("cache.server.bad_request")
            return error_response(request.id, ERR_BAD_REQUEST,
                                  "params.key (64-hex string) is required")
        entry = request.params.get("entry")
        with self._store_lock:
            stored = self._store.put_entry(key, entry)
        if not stored:
            # The envelope failed verification: refuse loudly so the
            # broken client is visible, and never touch the store.
            self._count("cache.server.rejected_puts")
            return error_response(
                request.id, ERR_BAD_REQUEST,
                "entry failed integrity verification "
                "(format/key/payload_sha256 mismatch); refused")
        self._count("cache.server.stores")
        return ok_response(request.id, "cache-put", {"stored": True},
                           (time.perf_counter() - start) * 1000.0)

    def _stats(self) -> Dict[str, Any]:
        with self._store_lock:
            store = self._store.stats()
        return {
            "kind": "stats",
            "role": "cache",
            "status": "draining" if self._draining else "ok",
            "root": str(self._store.root),
            "counters": self.counters(),
            "store": store,
            # The serving host's own stage fingerprints: comparing these
            # across shards diagnoses mixed-code-version fleets (keys
            # simply stop matching; see docs/operations.md).
            "fingerprints": api.engine_fingerprints(),
            "uptime_s": round(time.perf_counter() - self._started, 3),
        }

    # -- drain hooks --------------------------------------------------------

    def on_bad_request(self) -> None:
        self._count("cache.server.bad_request")

    def on_drain_begin(self) -> None:
        self._draining = True
