"""Chaos-mode request faults for the analysis service.

The PR-1 fault layer perturbs the *simulated machine's* timing to
attack the sequential-equivalence guarantee; this module applies the
same trust-but-verify discipline to the *hosting* layer.  A seeded
:class:`RequestFaultPlan` injects two semantics-preserving pressures in
front of real requests:

* **reject** — the request is refused with the same structured
  ``overloaded`` error organic backpressure produces (tagged
  ``"fault": "inject-reject"`` so tests can tell them apart);
* **delay** — the worker sleeps before computing, driving slow-path
  machinery: deadline expiry, coalesced waiters timing out at
  different moments, drain with stragglers in flight.

Faults never corrupt a response body: a chaos-mode server still
returns either a correct result or a structured error — the serving
analogue of "no silent wrong answers".

Determinism: the plan owns a private ``random.Random(seed)`` consumed
once per admission decision in arrival order, and each kind has a
finite budget, so a chaos smoke run is bounded and (for a fixed
arrival order) replayable.
"""

from __future__ import annotations

import random
import threading
from typing import Optional, Tuple

FAULT_REJECT = "inject-reject"
FAULT_DELAY = "inject-delay"

#: Fleet-level (router → backend) fault kinds.
FAULT_BLACKHOLE = "inject-blackhole"
FAULT_SLOW = "inject-slow"
FAULT_KILL = "inject-kill"


class RequestFaultPlan:
    """Seeded, budgeted request-fault injection for the server."""

    name = "serve-mixed"

    def __init__(
        self,
        seed: int,
        reject_rate: float = 0.15,
        delay_rate: float = 0.25,
        delay_ms: Tuple[float, float] = (5.0, 120.0),
        budget: int = 64,
    ):
        self.seed = seed
        self.reject_rate = reject_rate
        self.delay_rate = delay_rate
        self.delay_ms = delay_ms
        self.budget = budget
        self.injected: dict[str, int] = {FAULT_REJECT: 0, FAULT_DELAY: 0}
        self._rng = random.Random(seed)
        # Arrival order is decided under this lock so concurrent
        # connections draw from one deterministic stream.
        self._lock = threading.Lock()

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def on_request(self) -> Optional[Tuple[str, float]]:
        """Decide the fault for one arriving engine request.

        Returns ``None`` (no fault), ``(FAULT_REJECT, 0)``, or
        ``(FAULT_DELAY, milliseconds)``.
        """
        with self._lock:
            if self.total_injected >= self.budget:
                return None
            roll = self._rng.random()
            if roll < self.reject_rate:
                self.injected[FAULT_REJECT] += 1
                return FAULT_REJECT, 0.0
            if roll < self.reject_rate + self.delay_rate:
                lo, hi = self.delay_ms
                delay = self._rng.uniform(lo, hi)
                self.injected[FAULT_DELAY] += 1
                return FAULT_DELAY, delay
            return None

    def describe(self) -> str:
        return (
            f"{self.name}(seed={self.seed}): "
            f"reject@{self.reject_rate:.0%} delay@{self.delay_rate:.0%} "
            f"{self.delay_ms[0]:.0f}-{self.delay_ms[1]:.0f}ms, "
            f"budget {self.budget}, injected {self.total_injected} "
            f"({self.injected[FAULT_REJECT]} reject, "
            f"{self.injected[FAULT_DELAY]} delay)"
        )


class FleetFaultPlan:
    """Seeded, budgeted *router-level* fault injection.

    Where :class:`RequestFaultPlan` pressures one server's admission
    path, this plan pressures the router → backend transport — the
    machinery the fleet exists to survive:

    * **blackhole** — the router treats the chosen backend as
      unreachable for this send (a synthetic connect failure, consumed
      without touching the network), driving the retry/failover path
      and, repeated, the circuit breaker;
    * **slow** — the send is delayed (slow-loris-shaped latency),
      driving per-request timeouts and p99 inflation;
    * **kill** — the decision to ``kill -9`` one live backend process;
      the plan only *decides* (returns the fault so the chaos runner,
      which owns the subprocesses, performs the kill), keeping this
      module free of process management.

    The invariant under every one of these is the fleet contract:
    clients still receive either a correct result (byte-identical
    modulo ``wall`` to the one-shot CLI) or a typed error — faults may
    move latency and routing, never answers.

    Determinism matches :class:`RequestFaultPlan`: one private seeded
    RNG consumed in send order under a lock, finite per-kind budgets.
    """

    name = "fleet-mixed"

    def __init__(
        self,
        seed: int,
        blackhole_rate: float = 0.10,
        slow_rate: float = 0.10,
        kill_rate: float = 0.0,
        slow_ms: Tuple[float, float] = (20.0, 250.0),
        budget: int = 64,
    ):
        self.seed = seed
        self.blackhole_rate = blackhole_rate
        self.slow_rate = slow_rate
        self.kill_rate = kill_rate
        self.slow_ms = slow_ms
        self.budget = budget
        self.injected: dict[str, int] = {
            FAULT_BLACKHOLE: 0, FAULT_SLOW: 0, FAULT_KILL: 0,
        }
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def on_send(self, backend: str) -> Optional[Tuple[str, float]]:
        """Decide the fault for one router → backend send.

        Returns ``None``, ``(FAULT_BLACKHOLE, 0)``, ``(FAULT_SLOW,
        milliseconds)``, or ``(FAULT_KILL, 0)``.  ``backend`` is not
        consulted for the decision (the stream stays replayable however
        the ring assigns owners); it exists for callers' logging.
        """
        del backend
        with self._lock:
            if self.total_injected >= self.budget:
                return None
            roll = self._rng.random()
            if roll < self.blackhole_rate:
                self.injected[FAULT_BLACKHOLE] += 1
                return FAULT_BLACKHOLE, 0.0
            if roll < self.blackhole_rate + self.slow_rate:
                lo, hi = self.slow_ms
                delay = self._rng.uniform(lo, hi)
                self.injected[FAULT_SLOW] += 1
                return FAULT_SLOW, delay
            if roll < self.blackhole_rate + self.slow_rate + self.kill_rate:
                self.injected[FAULT_KILL] += 1
                return FAULT_KILL, 0.0
            return None

    def describe(self) -> str:
        return (
            f"{self.name}(seed={self.seed}): "
            f"blackhole@{self.blackhole_rate:.0%} "
            f"slow@{self.slow_rate:.0%} "
            f"{self.slow_ms[0]:.0f}-{self.slow_ms[1]:.0f}ms "
            f"kill@{self.kill_rate:.0%}, "
            f"budget {self.budget}, injected {self.total_injected} "
            f"({self.injected[FAULT_BLACKHOLE]} blackhole, "
            f"{self.injected[FAULT_SLOW]} slow, "
            f"{self.injected[FAULT_KILL]} kill)"
        )
