"""Chaos-mode request faults for the analysis service.

The PR-1 fault layer perturbs the *simulated machine's* timing to
attack the sequential-equivalence guarantee; this module applies the
same trust-but-verify discipline to the *hosting* layer.  A seeded
:class:`RequestFaultPlan` injects two semantics-preserving pressures in
front of real requests:

* **reject** — the request is refused with the same structured
  ``overloaded`` error organic backpressure produces (tagged
  ``"fault": "inject-reject"`` so tests can tell them apart);
* **delay** — the worker sleeps before computing, driving slow-path
  machinery: deadline expiry, coalesced waiters timing out at
  different moments, drain with stragglers in flight.

Faults never corrupt a response body: a chaos-mode server still
returns either a correct result or a structured error — the serving
analogue of "no silent wrong answers".

Determinism: the plan owns a private ``random.Random(seed)`` consumed
once per admission decision in arrival order, and each kind has a
finite budget, so a chaos smoke run is bounded and (for a fixed
arrival order) replayable.
"""

from __future__ import annotations

import random
import threading
from typing import Optional, Tuple

FAULT_REJECT = "inject-reject"
FAULT_DELAY = "inject-delay"


class RequestFaultPlan:
    """Seeded, budgeted request-fault injection for the server."""

    name = "serve-mixed"

    def __init__(
        self,
        seed: int,
        reject_rate: float = 0.15,
        delay_rate: float = 0.25,
        delay_ms: Tuple[float, float] = (5.0, 120.0),
        budget: int = 64,
    ):
        self.seed = seed
        self.reject_rate = reject_rate
        self.delay_rate = delay_rate
        self.delay_ms = delay_ms
        self.budget = budget
        self.injected: dict[str, int] = {FAULT_REJECT: 0, FAULT_DELAY: 0}
        self._rng = random.Random(seed)
        # Arrival order is decided under this lock so concurrent
        # connections draw from one deterministic stream.
        self._lock = threading.Lock()

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def on_request(self) -> Optional[Tuple[str, float]]:
        """Decide the fault for one arriving engine request.

        Returns ``None`` (no fault), ``(FAULT_REJECT, 0)``, or
        ``(FAULT_DELAY, milliseconds)``.
        """
        with self._lock:
            if self.total_injected >= self.budget:
                return None
            roll = self._rng.random()
            if roll < self.reject_rate:
                self.injected[FAULT_REJECT] += 1
                return FAULT_REJECT, 0.0
            if roll < self.reject_rate + self.delay_rate:
                lo, hi = self.delay_ms
                delay = self._rng.uniform(lo, hi)
                self.injected[FAULT_DELAY] += 1
                return FAULT_DELAY, delay
            return None

    def describe(self) -> str:
        return (
            f"{self.name}(seed={self.seed}): "
            f"reject@{self.reject_rate:.0%} delay@{self.delay_rate:.0%} "
            f"{self.delay_ms[0]:.0f}-{self.delay_ms[1]:.0f}ms, "
            f"budget {self.budget}, injected {self.total_injected} "
            f"({self.injected[FAULT_REJECT]} reject, "
            f"{self.injected[FAULT_DELAY]} delay)"
        )
