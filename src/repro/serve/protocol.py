"""The ``repro serve`` wire protocol: newline-delimited JSON.

One request per line, one response line per request, responses carry
the request's ``id`` (they may be written in any order; this server
answers a connection's requests in order because each connection
processes one request at a time).

Request::

    {"id": "r1", "op": "run", "params": {...}, "deadline_ms": 5000}

* ``id`` — caller-chosen correlation token (string or number; echoed).
* ``op`` — one of ``analyze`` / ``transform`` / ``run`` / ``sweep``
  (engine requests, executed on the worker pool) or ``health`` /
  ``stats`` / ``drain`` (control requests, served inline, never
  queued, never rejected).  ``drain`` asks a server to bleed out
  gracefully; sent to the shard router with ``params.backend`` it
  instead bleeds one backend out of the hash ring (see
  :mod:`repro.fleet.router`).
* ``params`` — keyword arguments of the matching :mod:`repro.api`
  facade call (e.g. for ``run``: ``source``, ``expr``, plus any
  :class:`repro.api.RunOptions` field).
* ``deadline_ms`` — optional per-request deadline; the server default
  applies when absent.

Success response::

    {"v": 1, "id": "r1", "ok": true, "op": "run",
     "result": {...}, "wall_ms": 12.3}

``result`` is exactly the facade result's ``to_dict()`` — byte-
identical (modulo its ``wall`` section) to what ``repro run --json``
prints for the same inputs.

Error response::

    {"v": 1, "id": "r1", "ok": false,
     "error": {"code": "overloaded", "message": "..."}, "wall_ms": 0.1}

Error codes (stable vocabulary):

* ``bad_request``        — malformed JSON, unknown op, bad params.
* ``overloaded``         — admission queue full; the 429-style
  backpressure signal.  Retry later; the server never queues unboundedly.
* ``deadline_exceeded``  — the deadline elapsed before the result.
* ``shutting_down``      — the server is draining; no new work.
* ``unavailable``        — (router only) no backend could answer and
  sequential fallback was disabled; the 503-style total-outage signal.
* ``transform_refused``  — Curare declined a prerequisite transform.
* ``engine_error``       — the engine failed on well-formed input
  (including a crashed process-pool worker — crash isolation turns a
  dead worker into this typed error, never a dropped connection).
* ``internal``           — unexpected server-side failure.

An injected chaos fault (``--chaos-seed``) adds ``"fault": <kind>`` to
the error object so clients and tests can tell synthetic pressure from
organic pressure.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Union

PROTOCOL_VERSION = 1

#: Engine ops run on the worker pool; control ops are served inline.
ENGINE_OPS = ("analyze", "transform", "run", "sweep")
CONTROL_OPS = ("health", "stats", "drain")
#: Cache ops are answered by ``repro cache-serve``
#: (:mod:`repro.fleet` workers and sweep shards share one result store
#: through them); an engine server answers them with ``bad_request``.
#: ``cache-get {key}`` → ``{found, entry}``; ``cache-put {key, entry}``
#: → ``{stored}``.  Entries travel whole (format/key/payload/
#: ``payload_sha256``) so both sides re-verify integrity at the wire.
CACHE_OPS = ("cache-get", "cache-put")
OPS = ENGINE_OPS + CONTROL_OPS + CACHE_OPS

ERR_BAD_REQUEST = "bad_request"
ERR_OVERLOADED = "overloaded"
ERR_DEADLINE = "deadline_exceeded"
ERR_SHUTTING_DOWN = "shutting_down"
ERR_UNAVAILABLE = "unavailable"
ERR_TRANSFORM_REFUSED = "transform_refused"
ERR_ENGINE = "engine_error"
ERR_INTERNAL = "internal"

ERROR_CODES = (
    ERR_BAD_REQUEST,
    ERR_OVERLOADED,
    ERR_DEADLINE,
    ERR_SHUTTING_DOWN,
    ERR_UNAVAILABLE,
    ERR_TRANSFORM_REFUSED,
    ERR_ENGINE,
    ERR_INTERNAL,
)


@dataclass(frozen=True)
class Request:
    """One parsed, validated request line."""

    id: Union[str, int, None]
    op: str
    params: Dict[str, Any] = field(default_factory=dict)
    deadline_ms: Optional[float] = None


class ProtocolError(ValueError):
    """A request line that cannot be accepted; carries the request id
    when one could be recovered from the malformed document."""

    def __init__(self, message: str, request_id: Any = None):
        super().__init__(message)
        self.request_id = request_id


def parse_request(line: str) -> Request:
    """Parse one NDJSON request line; raises :class:`ProtocolError`."""
    try:
        obj = json.loads(line)
    except ValueError as err:
        raise ProtocolError(f"malformed JSON: {err}") from None
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(obj).__name__}"
        )
    request_id = obj.get("id")
    if request_id is not None and not isinstance(request_id, (str, int)):
        raise ProtocolError("'id' must be a string or number")
    op = obj.get("op")
    if not isinstance(op, str) or op not in OPS:
        raise ProtocolError(
            f"unknown op {op!r}; choose from: {', '.join(OPS)}",
            request_id,
        )
    params = obj.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError("'params' must be an object", request_id)
    deadline_ms = obj.get("deadline_ms")
    if deadline_ms is not None:
        if not isinstance(deadline_ms, (int, float)) \
                or isinstance(deadline_ms, bool) or deadline_ms <= 0:
            raise ProtocolError(
                "'deadline_ms' must be a positive number", request_id
            )
        deadline_ms = float(deadline_ms)
    return Request(id=request_id, op=op, params=params,
                   deadline_ms=deadline_ms)


def ok_response(request_id: Any, op: str, result: Dict[str, Any],
                wall_ms: float) -> Dict[str, Any]:
    return {
        "v": PROTOCOL_VERSION,
        "id": request_id,
        "ok": True,
        "op": op,
        "result": result,
        "wall_ms": round(wall_ms, 3),
    }


def error_response(request_id: Any, code: str, message: str,
                   wall_ms: float = 0.0,
                   fault: Optional[str] = None) -> Dict[str, Any]:
    assert code in ERROR_CODES, code
    error: Dict[str, Any] = {"code": code, "message": message}
    if fault is not None:
        error["fault"] = fault
    return {
        "v": PROTOCOL_VERSION,
        "id": request_id,
        "ok": False,
        "error": error,
        "wall_ms": round(wall_ms, 3),
    }


def encode(response: Dict[str, Any]) -> bytes:
    """One response line: canonical JSON + newline."""
    return (json.dumps(response, sort_keys=True, separators=(",", ":"),
                       ensure_ascii=False) + "\n").encode("utf-8")


def decode_response(line: Union[str, bytes]) -> Dict[str, Any]:
    """Client-side helper: parse one response line."""
    if isinstance(line, bytes):
        line = line.decode("utf-8")
    obj = json.loads(line)
    if not isinstance(obj, dict):
        raise ProtocolError("response must be a JSON object")
    return obj


def request_line(op: str, params: Optional[Dict[str, Any]] = None,
                 request_id: Any = None,
                 deadline_ms: Optional[float] = None) -> bytes:
    """Client-side helper: build one request line."""
    obj: Dict[str, Any] = {"op": op}
    if request_id is not None:
        obj["id"] = request_id
    if params:
        obj["params"] = params
    if deadline_ms is not None:
        obj["deadline_ms"] = deadline_ms
    return (json.dumps(obj, sort_keys=True) + "\n").encode("utf-8")
