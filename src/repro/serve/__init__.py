"""``repro serve`` — a long-lived concurrent analysis service.

The service hosts the stable :mod:`repro.api` facade behind a
newline-delimited-JSON socket protocol with a worker thread pool,
bounded admission (explicit backpressure), per-request deadlines and
cancellation, single-flight coalescing of identical in-flight
requests, warm shared :mod:`repro.perf` caches, chaos-mode request
faults, and graceful drain.  See :mod:`repro.serve.protocol` for the
wire format and :mod:`repro.serve.server` for the architecture.
"""

from repro.serve.cacheserver import CacheServeConfig, CacheServer
from repro.serve.chaos import (
    FAULT_BLACKHOLE,
    FAULT_DELAY,
    FAULT_KILL,
    FAULT_REJECT,
    FAULT_SLOW,
    FleetFaultPlan,
    RequestFaultPlan,
)
from repro.serve.protocol import (
    CACHE_OPS,
    CONTROL_OPS,
    ENGINE_OPS,
    ERROR_CODES,
    OPS,
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    decode_response,
    encode,
    error_response,
    ok_response,
    parse_request,
    request_line,
)
from repro.serve.server import (
    EXECUTOR_PROCESS,
    EXECUTOR_THREAD,
    EXECUTORS,
    AnalysisService,
    NdjsonServer,
    ReproServer,
    ServeConfig,
)

__all__ = [
    "AnalysisService",
    "CACHE_OPS",
    "CONTROL_OPS",
    "CacheServeConfig",
    "CacheServer",
    "ENGINE_OPS",
    "ERROR_CODES",
    "EXECUTOR_PROCESS",
    "EXECUTOR_THREAD",
    "EXECUTORS",
    "FAULT_BLACKHOLE",
    "FAULT_DELAY",
    "FAULT_KILL",
    "FAULT_REJECT",
    "FAULT_SLOW",
    "FleetFaultPlan",
    "NdjsonServer",
    "OPS",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ReproServer",
    "Request",
    "RequestFaultPlan",
    "ServeConfig",
    "decode_response",
    "encode",
    "error_response",
    "ok_response",
    "parse_request",
    "request_line",
]
