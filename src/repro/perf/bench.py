"""The pinned performance suite behind ``repro bench``.

Five cases cover the hot paths the perf layer touches:

* ``pipeline`` — end-to-end Curare (load → analyze → transform) over a
  corpus of paper workloads plus reference-dense list walkers.  This is
  where the analysis caches earn their keep: the corpus shares transfer
  functions and accessor shapes across functions, so the swept distance
  enumeration and the DFA cache collapse most of the automaton work.
* ``fig07_replay`` / ``fig10_replay`` — transform + concurrent replay of
  the two trace workloads, exercising the machine stepper end to end.
* ``a10_search`` — the any-result parallel search (transform + machine
  sweep), a scheduler-heavy workload.
* ``a12_sapp`` — the SAPP survey over concrete heap shapes, exercising
  the canonicalizer and path algebra.

Methodology
-----------

Every case runs in two modes **in the same process**:

* *baseline* — :func:`~repro.perf.perf_disabled` plus the ticker
  stepper: the pre-layer analyzer and machine (``always_on`` memo
  tables stay active because they predate the layer).
* *optimized* — the defaults: caches + interning on, heap stepper.

Both modes call :func:`~repro.perf.clear_caches` at every measured
iteration boundary, so each measured iteration is a cold start and the
comparison is cache-architecture versus cache-architecture, not warm
versus cold.  That claim is *enforced*, not assumed: after each clear
the harness asserts every LRU cache is empty, and per-iteration
hit/miss counter deltas are compared between the first and last
iteration — identical deltas mean iteration N started from the same
cache state as iteration 1, so process-global warmth cannot skew the
baseline-vs-optimized ratio.  (Intern tables are exempt by design:
interned objects are immortal, and the warm-up pass populates them
before any measured iteration.)  Reported times are the *minimum* of
``repeats`` iterations — the ``timeit`` convention: the minimum is the
least-noise estimate of the code's intrinsic cost, because scheduler
preemption and host contention only ever add time.  Both modes use the
same aggregator, so the ratio stays an apples-to-apples comparison.

The report is JSON (``BENCH_perf.json``).  Regression gating compares
*normalized* time — ``optimized_ms / baseline_ms`` measured within one
run — which is stable across machines of different absolute speed; see
:func:`compare_reports`.
"""

from __future__ import annotations

import gc
import sys
import time
from typing import Any, Callable, Dict, Iterable, Optional

from repro.perf import (
    cache_stats,
    clear_caches,
    perf_disabled,
    stepper_override,
)

#: The acceptance gate is the combined speedup over these cases.
GATE_CASES = ("pipeline", "fig10_replay")

_A10_SRC = """
(declaim (any-result probe) (pure slow-test))
(defun slow-test (x)
  (let ((i 0)) (while (< i 30) (setq i (1+ i))) (> x 100)))
(defun probe (lst)
  (cond ((null lst) nil)
        ((slow-test (car lst)) (car lst))
        (t (probe (cdr lst)))))
"""

_A10_MISS_HEAVY = "(setq d (list " + " ".join(["1"] * 15) + " 150))"

# Reference-dense list walkers: many reads/writes at varying depths
# against one cdr/cdr² transfer function — the shape that stresses the
# conflict survey (dozens of (A1, A2, τ, d) queries per function).
_DENSE_WALK = """
(defun {name} (l)
  (cond ((null l) nil)
        (t (setf (car l) (+ (car l) 1))
           (setf (car (cdr l)) (car (cdr (cdr l))))
           (setf (car (cdr (cdr l))) (car l))
           (setf (cdr (cdr (cdr (cdr l)))) (cdr (cdr l)))
           ({name} (cdr l)))))
"""

_DENSE_PAIR = """
(defun {name} (l acc)
  (cond ((null l) acc)
        (t (setf (car l) acc)
           (setf (car (cdr l)) (car (cdr (cdr (cdr l)))))
           ({name} (cdr (cdr l)) (+ acc (car l))))))
"""

_DEEP_WALK = """
(defun {name} (l)
  (cond ((null l) nil)
        (t (setf (car l) (car (cdr (cdr l))))
           (setf (car (cdr l)) (+ (car l) 1))
           (setf (car (cdr (cdr l))) (car (cdr (cdr (cdr (cdr l))))))
           (setf (cdr (cdr (cdr (cdr l)))) (cdr (cdr l)))
           (setf (car (cdr (cdr (cdr l)))) (car (cdr l)))
           ({name} (cdr l)))))
"""

_TREE_WALK = """
(defstruct tn left right val)
(defun {name} (n)
  (cond ((null n) nil)
        (t (setf (tn-val n) (+ (tn-val n) 1))
           (setf (tn-val (tn-left n)) (tn-val (tn-right n)))
           (setf (tn-left (tn-left n)) (tn-right (tn-left n)))
           ({name} (tn-left n))
           ({name} (tn-right n)))))
"""


def _pipeline_corpus() -> list[tuple[str, str]]:
    """(program, fname) pairs, unique by fname (later defs would clobber
    earlier ones inside the shared interpreter)."""
    from repro.harness.chaos import paper_workloads
    from repro.obs.workloads import trace_workloads

    corpus: list[tuple[str, str]] = []
    seen: set[str] = set()

    def add(program: str, fname: str) -> None:
        if fname not in seen:
            seen.add(fname)
            corpus.append((program, fname))

    for workload in paper_workloads(8):
        add(workload.program, workload.fname)
    add(_A10_SRC, "probe")
    traces = trace_workloads()
    for name in ("fig03", "fig04", "fig05", "fig07", "fig10", "remq", "tree"):
        if name in traces:
            add(traces[name].program, traces[name].fname)
    for i in range(4):
        add(_DENSE_WALK.format(name=f"walk{i}"), f"walk{i}")
        add(_DENSE_PAIR.format(name=f"pair{i}"), f"pair{i}")
        add(_DEEP_WALK.format(name=f"deep{i}"), f"deep{i}")
        add(_TREE_WALK.format(name=f"tw{i}"), f"tw{i}")
    return corpus


def case_pipeline() -> None:
    from repro.lisp.interpreter import Interpreter
    from repro.transform.pipeline import Curare

    interp = Interpreter()
    curare = Curare(interp, assume_sapp=True)
    corpus = _pipeline_corpus()
    for program, _ in corpus:
        curare.load_program(program)
    for _, fname in corpus:
        curare.transform(fname)


def _replay(name: str) -> None:
    from repro.obs.recorder import Recorder
    from repro.obs.workloads import run_trace_workload, trace_workloads

    run_trace_workload(trace_workloads()[name], Recorder())


def case_fig07_replay() -> None:
    _replay("fig07")


def case_fig10_replay() -> None:
    _replay("fig10")


def case_a10_search() -> None:
    from repro.lisp.interpreter import Interpreter
    from repro.runtime.clock import FREE_SYNC
    from repro.runtime.machine import Machine
    from repro.transform.pipeline import Curare

    for procs in (1, 4):
        interp = Interpreter()
        curare = Curare(interp, assume_sapp=True)
        curare.load_program(_A10_SRC)
        curare.transform("probe")
        curare.runner.eval_text(_A10_MISS_HEAVY)
        machine = Machine(interp, processors=procs, cost_model=FREE_SYNC)
        machine.spawn_text("(setq hit (probe-cc d))")
        machine.run()
        hit = interp.globals.lookup(interp.intern("hit"))
        if hit != 150:
            raise RuntimeError(f"a10 search returned {hit!r}, expected 150")


_A12_SHAPES = [
    ("fresh list", "(setq r (list 1 2 3 4 5))", False),
    ("nested tree", "(setq r (list 1 (list 2 (list 3)) 4))", False),
    (
        "shared tail",
        "(setq tail (list 8 9)) (setq r (cons (append (list 1) tail) tail))",
        False,
    ),
    ("cycle", "(setq r (list 1 2)) (setf (cddr r) r)", False),
    (
        "doubly-linked",
        """(defstruct dn succ pred)
           (setq a (make-dn nil nil)) (setq b (make-dn nil a))
           (setf (dn-succ a) b) (setq r a)""",
        True,
    ),
]


def case_a12_sapp() -> None:
    from repro.lisp.interpreter import Interpreter
    from repro.lisp.runner import SequentialRunner
    from repro.paths.canonical import Canonicalizer, InversePair
    from repro.paths.sapp import check_sapp

    for _label, setup, canonicalize in _A12_SHAPES:
        interp = Interpreter()
        runner = SequentialRunner(interp)
        runner.eval_text(setup)
        root = interp.globals.lookup(interp.intern("r"))
        if canonicalize:
            check_sapp(root, Canonicalizer([InversePair("succ", "pred")]))
            check_sapp(root)
        else:
            check_sapp(root)


#: name -> (description, callable).  Order is report order.
BENCH_CASES: Dict[str, tuple[str, Callable[[], None]]] = {
    "pipeline": (
        "end-to-end Curare over the workload corpus (one interpreter)",
        case_pipeline,
    ),
    "fig07_replay": (
        "transform + concurrent replay of the fig07 trace workload",
        case_fig07_replay,
    ),
    "fig10_replay": (
        "transform + concurrent replay of the fig10 trace workload",
        case_fig10_replay,
    ),
    "a10_search": (
        "any-result parallel search: transform + machine sweep",
        case_a10_search,
    ),
    "a12_sapp": (
        "SAPP survey over concrete heap shapes",
        case_a12_sapp,
    ),
}


def _assert_cold() -> None:
    """Every LRU cache must be empty at an iteration boundary."""
    dirty = [
        name
        for name, stats in cache_stats().items()
        if "maxsize" in stats and stats["size"]  # LRU caches only
    ]
    if dirty:
        raise RuntimeError(
            f"caches not cold at iteration start: {', '.join(sorted(dirty))}"
        )


def _counter_snapshot() -> Dict[str, tuple]:
    return {
        name: (stats["hits"], stats["misses"], stats.get("bypasses", 0))
        for name, stats in cache_stats().items()
    }


def _iteration_delta(
    before: Dict[str, tuple], after: Dict[str, tuple]
) -> Dict[str, tuple]:
    return {
        name: tuple(b - a for b, a in zip(now, before.get(name, (0,) * 3)))
        for name, now in after.items()
    }


def _measure(fn: Callable[[], None], repeats: int) -> float:
    """Minimum wall time of ``repeats`` cold-start iterations, in ms.

    Enforces the cold-start claim at every measured-iteration boundary:
    the caches are cleared *and verified empty* before each iteration,
    and the per-iteration cache-counter deltas of the first and last
    iteration must match exactly — a deterministic workload starting
    from identical cache state produces identical hit/miss/bypass
    profiles, so any mismatch means warmth leaked across iterations.
    """
    times = []
    deltas = []
    gc_was_enabled = gc.isenabled()
    for _ in range(repeats):
        clear_caches()
        _assert_cold()
        before = _counter_snapshot()
        # Collect outside the timed region and keep the collector off
        # inside it: cycle-collection pauses land on random iterations
        # and would skew the baseline/optimized ratio by luck of the
        # draw.  Applied identically to both modes.
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            fn()
            times.append((time.perf_counter() - start) * 1000.0)
        finally:
            if gc_was_enabled:
                gc.enable()
        deltas.append(_iteration_delta(before, _counter_snapshot()))
    if deltas[0] != deltas[-1]:
        drifted = sorted(
            name
            for name in set(deltas[0]) | set(deltas[-1])
            if deltas[0].get(name) != deltas[-1].get(name)
        )
        raise RuntimeError(
            "cache state leaked across measured iterations "
            f"(first vs last hit/miss/bypass deltas differ): "
            f"{', '.join(drifted)}"
        )
    return min(times)


def run_suite(
    repeats: int = 5, cases: Optional[Iterable[str]] = None
) -> Dict[str, Any]:
    """Run the suite in both modes and return the report dict."""
    selected = list(cases) if cases is not None else list(BENCH_CASES)
    unknown = [name for name in selected if name not in BENCH_CASES]
    if unknown:
        raise ValueError(f"unknown bench case(s): {', '.join(unknown)}")

    # The envelope (schema_version / kind / body) is added by writers:
    # this is the body of a "perf-bench" report (see repro.envelope).
    report: Dict[str, Any] = {
        "repeats": repeats,
        "python": sys.version.split()[0],
        "cases": {},
    }

    hit_counters: Dict[str, Dict[str, Any]] = {}
    for name in selected:
        description, fn = BENCH_CASES[name]
        fn()  # warm up code paths (imports, bytecode) outside timing
        before = cache_stats()
        optimized_ms = _measure(fn, repeats)
        after = cache_stats()
        with perf_disabled(), stepper_override("ticker"):
            baseline_ms = _measure(fn, repeats)
        report["cases"][name] = {
            "description": description,
            "baseline_ms": round(baseline_ms, 3),
            "optimized_ms": round(optimized_ms, 3),
            "speedup": round(baseline_ms / optimized_ms, 3),
            "normalized": round(optimized_ms / baseline_ms, 4),
            # _measure raises if any iteration starts warm or the
            # first/last iteration cache profiles diverge.
            "cold_start_verified": True,
        }
        for cache, stats in after.items():
            prior = before.get(cache, {})
            hits = stats["hits"] - prior.get("hits", 0)
            misses = stats["misses"] - prior.get("misses", 0)
            entry = hit_counters.setdefault(cache, {"hits": 0, "misses": 0})
            entry["hits"] += hits
            entry["misses"] += misses

    report["cache_hit_rates"] = {
        cache: {
            "hits": entry["hits"],
            "misses": entry["misses"],
            "hit_rate": round(
                entry["hits"] / (entry["hits"] + entry["misses"]), 4
            )
            if entry["hits"] + entry["misses"]
            else 0.0,
        }
        for cache, entry in sorted(hit_counters.items())
        if entry["hits"] + entry["misses"]
    }

    gate = [n for n in GATE_CASES if n in report["cases"]]
    if gate:
        base_total = sum(report["cases"][n]["baseline_ms"] for n in gate)
        opt_total = sum(report["cases"][n]["optimized_ms"] for n in gate)
        report["combined"] = {
            "cases": gate,
            "baseline_ms": round(base_total, 3),
            "optimized_ms": round(opt_total, 3),
            "speedup": round(base_total / opt_total, 3),
        }
    return report


def validate_report(obj: Any) -> list[str]:
    """Schema-check a (baseline) report dict before comparing against it.

    Returns a list of problems; empty means the report is usable by
    :func:`compare_reports`.  The CLI turns a non-empty list into a
    one-line exit-2 diagnostic instead of a ``KeyError``/``TypeError``
    traceback from deep inside the comparison.
    """
    if not isinstance(obj, dict):
        return [f"report must be a JSON object, got {type(obj).__name__}"]
    cases = obj.get("cases")
    if not isinstance(cases, dict) or not cases:
        return ["missing or empty 'cases' object"]
    problems: list[str] = []
    for name, case in cases.items():
        if not isinstance(case, dict):
            problems.append(f"cases[{name!r}] is not an object")
            continue
        for fieldname in ("baseline_ms", "optimized_ms"):
            value = case.get(fieldname)
            if not isinstance(value, (int, float)) or isinstance(value, bool) \
                    or value <= 0:
                problems.append(
                    f"cases[{name!r}].{fieldname} missing or not a "
                    "positive number"
                )
    return problems


def compare_reports(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    max_regress_pct: float,
) -> list[str]:
    """Regression check; returns failure messages (empty = pass).

    Comparison is on *normalized* time (``optimized_ms / baseline_ms``
    within each run) so a faster or slower CI machine does not shift
    the verdict: only the optimized path regressing relative to the
    same-process baseline trips the gate.
    """
    failures: list[str] = []
    allowed = 1.0 + max_regress_pct / 100.0
    for name, base_case in baseline.get("cases", {}).items():
        current_case = current.get("cases", {}).get(name)
        if current_case is None:
            failures.append(f"{name}: case missing from current report")
            continue
        base_norm = base_case["optimized_ms"] / base_case["baseline_ms"]
        cur_norm = current_case["optimized_ms"] / current_case["baseline_ms"]
        if cur_norm > base_norm * allowed:
            regress = (cur_norm / base_norm - 1.0) * 100.0
            failures.append(
                f"{name}: normalized time {cur_norm:.3f} vs baseline "
                f"{base_norm:.3f} (+{regress:.0f}%, allowed "
                f"+{max_regress_pct:.0f}%)"
            )
    return failures


def missing_cases(
    current: Dict[str, Any], baseline: Dict[str, Any]
) -> list[str]:
    """Names of baseline cases absent from the current report.

    A missing case is a *configuration* problem (renamed case, filtered
    run, stale baseline), not a perf regression — the CLI reports it as
    a distinct exit-2 diagnostic instead of folding it into the
    regression failures.
    """
    current_cases = current.get("cases", {})
    return [
        name for name in baseline.get("cases", {}) if name not in current_cases
    ]


def min_speedup_failures(
    report: Dict[str, Any], floor: float
) -> list[str]:
    """Per-case speedup-floor check; returns failure messages.

    Unlike :func:`compare_reports` this needs no baseline file: every
    case's in-run speedup (``baseline_ms / optimized_ms``) must be at
    least ``floor``.  The CI gate runs it with ``--min-speedup 1.0`` so
    the optimized layer can never silently regress below the reference
    interpreter on any case.
    """
    failures: list[str] = []
    for name, case in report.get("cases", {}).items():
        speedup = case["baseline_ms"] / case["optimized_ms"]
        if speedup < floor:
            failures.append(
                f"{name}: speedup {speedup:.3f}x below floor {floor:.2f}x "
                f"({case['optimized_ms']:.1f}ms optimized vs "
                f"{case['baseline_ms']:.1f}ms baseline)"
            )
    return failures


def markdown_report(report: Dict[str, Any]) -> str:
    """Per-case results as a GitHub-flavored markdown table.

    Written to ``$GITHUB_STEP_SUMMARY`` by the CI perf job so the
    numbers appear on the workflow run page without digging into logs.
    """
    lines = [
        "### Perf suite",
        "",
        "| case | baseline (ms) | optimized (ms) | speedup |",
        "| --- | ---: | ---: | ---: |",
    ]
    for name, case in report["cases"].items():
        lines.append(
            f"| `{name}` | {case['baseline_ms']:.1f} "
            f"| {case['optimized_ms']:.1f} | {case['speedup']:.2f}x |"
        )
    combined = report.get("combined")
    if combined:
        lines.append(
            f"| **combined ({'+'.join(combined['cases'])})** "
            f"| {combined['baseline_ms']:.1f} "
            f"| {combined['optimized_ms']:.1f} "
            f"| **{combined['speedup']:.2f}x** |"
        )
    lines.append("")
    return "\n".join(lines)


def format_report(report: Dict[str, Any]) -> str:
    """Human-readable summary of a report dict."""
    lines = [
        f"{'case':<14} {'baseline':>10} {'optimized':>10} {'speedup':>8}"
    ]
    for name, case in report["cases"].items():
        lines.append(
            f"{name:<14} {case['baseline_ms']:>8.1f}ms "
            f"{case['optimized_ms']:>8.1f}ms {case['speedup']:>7.2f}x"
        )
    combined = report.get("combined")
    if combined:
        lines.append(
            f"{'combined(' + '+'.join(combined['cases']) + ')':<14} "
            f"{combined['baseline_ms']:>8.1f}ms "
            f"{combined['optimized_ms']:>8.1f}ms "
            f"{combined['speedup']:>7.2f}x"
        )
    rates = report.get("cache_hit_rates", {})
    if rates:
        lines.append("cache hit rates (optimized runs):")
        for cache, entry in rates.items():
            lines.append(
                f"  {cache:<24} {entry['hit_rate']:>6.1%} "
                f"({entry['hits']} hits / {entry['misses']} misses)"
            )
    return "\n".join(lines)
