"""Hot-path performance layer: interning, memoization, batched stepping.

Three coordinated optimizations live behind this package:

1. **Hash-consing** of path regexes and accessors
   (:mod:`repro.paths.regex`, :mod:`repro.paths.accessor`) so
   structurally-equal automata inputs are pointer-equal.
2. **Memoization** of the expensive automata derivations — NFA
   construction, determinization + minimization, prefix-closure
   conflict tests, transfer-function powers — behind counting LRU
   caches (:mod:`repro.perf.cache`).
3. **Batched machine stepping** — :class:`repro.runtime.machine.Machine`
   defaults to an event-heap stepper that advances simulated time in
   multi-tick batches while reproducing the per-tick stepper's effect
   traces and statistics byte-for-byte.

The whole layer is toggleable: :func:`set_perf_enabled` switches the
caches off and flips the default machine stepper back to the legacy
per-tick loop, which is how ``repro bench`` measures its pre-layer
baseline inside a single process.  See ``docs/performance.md``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.perf.cache import (
    EventCounter,
    InternTable,
    LRUCache,
    cache_stats,
    clear_caches,
    named_caches,
    perf_disabled,
    perf_enabled,
    publish_cache_stats,
    set_perf_enabled,
)

__all__ = [
    "EventCounter",
    "InternTable",
    "LRUCache",
    "cache_stats",
    "clear_caches",
    "named_caches",
    "perf_disabled",
    "perf_enabled",
    "publish_cache_stats",
    "set_perf_enabled",
    "default_stepper",
    "stepper_override",
    "default_eval_mode",
    "eval_mode_override",
    "EVAL_MODES",
]

# Default Machine stepper when the caller does not pass one explicitly.
# "heap" is the batched event-heap scheduler; "ticker" the legacy
# per-tick polling loop kept as the differential-testing reference.
_STEPPER_OVERRIDE: "str | None" = None


def default_stepper() -> str:
    """Resolve the stepper a Machine uses when none is requested.

    Honors an active :func:`stepper_override`, then the global perf
    switch (disabled ⇒ the legacy ``"ticker"`` loop, matching the
    pre-layer runtime exactly).
    """
    if _STEPPER_OVERRIDE is not None:
        return _STEPPER_OVERRIDE
    return "heap" if perf_enabled() else "ticker"


@contextmanager
def stepper_override(name: str) -> Iterator[None]:
    """Force the default Machine stepper within a block.

    Used by the differential tests and the bench harness to run the
    same workload under both steppers without threading a parameter
    through every harness layer.
    """
    if name not in ("heap", "ticker"):
        raise ValueError(f"unknown stepper {name!r}")
    global _STEPPER_OVERRIDE
    previous = _STEPPER_OVERRIDE
    _STEPPER_OVERRIDE = name
    try:
        yield
    finally:
        _STEPPER_OVERRIDE = previous


#: The two evaluation strategies for the Lisp substrate.  "interpreter"
#: is the generator-style reference evaluator; "compiled" is the
#: closure-emitting compiler (repro.lisp.compile) driven through the CPS
#: trampoline.  Both produce byte-identical effect streams.
EVAL_MODES = ("interpreter", "compiled")

_EVAL_MODE_OVERRIDE: "str | None" = None


def default_eval_mode() -> str:
    """Resolve the evaluation mode drivers use when none is requested.

    Honors an active :func:`eval_mode_override`, then the global perf
    switch (disabled ⇒ the reference interpreter, matching the
    pre-layer evaluator exactly).
    """
    if _EVAL_MODE_OVERRIDE is not None:
        return _EVAL_MODE_OVERRIDE
    return "compiled" if perf_enabled() else "interpreter"


@contextmanager
def eval_mode_override(mode: str) -> Iterator[None]:
    """Force the default evaluation mode within a block.

    The differential tests run the same workload under both evaluators
    with this, without threading a parameter through every layer.
    """
    if mode not in EVAL_MODES:
        raise ValueError(f"unknown eval mode {mode!r}")
    global _EVAL_MODE_OVERRIDE
    previous = _EVAL_MODE_OVERRIDE
    _EVAL_MODE_OVERRIDE = mode
    try:
        yield
    finally:
        _EVAL_MODE_OVERRIDE = previous
