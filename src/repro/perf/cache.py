"""Counting LRU caches and intern tables for the hot analysis paths.

Curare's conflict analysis (§2 of the paper) spends nearly all of its
time manipulating path regular expressions and the automata derived
from them.  The same sub-expressions recur constantly — every accessor
pair in a function shares the same transfer function, every distance
``d`` in a survey re-composes ``tau^d`` — so the standard remedy from
the abstract-interpretation literature applies: hash-cons the immutable
structures and memoize the expensive derivations behind bounded caches.

This module is the substrate for that layer:

* :class:`LRUCache` — a bounded memo table with hit/miss/eviction
  counters, registered by name so the observability layer can export
  cache effectiveness as counters (``perf.cache.<name>.hits`` …).
* :class:`InternTable` — an unbounded identity table used to hash-cons
  regexes and accessors (structurally-equal values become
  pointer-equal).  Interned objects are immortal by design; the tables
  only hold the small alphabet of shapes a program's declarations can
  generate.
* A process-wide enable switch.  ``set_perf_enabled(False)`` (or the
  :func:`perf_disabled` context manager) bypasses every cache that was
  *introduced by the perf layer* while leaving ``always_on`` caches —
  the memo tables that predate this layer — active.  The benchmark
  harness uses this to measure an honest pre-optimization baseline in
  the same process.

Everything here is deliberately dependency-free: plain dicts with LRU
ordering via ``dict`` move-to-end semantics, no threads, no clocks.
"""

from __future__ import annotations

import weakref
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, Optional

__all__ = [
    "LRUCache",
    "InternTable",
    "EventCounter",
    "named_caches",
    "cache_stats",
    "clear_caches",
    "perf_enabled",
    "set_perf_enabled",
    "perf_disabled",
    "mark_cache_baseline",
    "publish_cache_stats",
]

# Registry of every cache/intern table ever created, by name.  Names are
# hierarchical ("paths.nfa", "paths.conflict", …) and must be unique.
_REGISTRY: "Dict[str, LRUCache | InternTable | EventCounter]" = {}

_ENABLED = True

_MISSING = object()


def perf_enabled() -> bool:
    """True when the toggleable perf caches are active (the default)."""
    return _ENABLED


def set_perf_enabled(flag: bool) -> None:
    """Globally enable/disable the perf-layer caches and interning.

    ``always_on`` caches (memoization that existed before the perf
    layer) are unaffected, so disabling reproduces the pre-layer
    behaviour rather than something slower than it.
    """
    global _ENABLED
    _ENABLED = bool(flag)


@contextmanager
def perf_disabled() -> Iterator[None]:
    """Context manager: run a block with the perf caches bypassed."""
    previous = _ENABLED
    set_perf_enabled(False)
    try:
        yield
    finally:
        set_perf_enabled(previous)


def _register(entry: "LRUCache | InternTable | EventCounter") -> None:
    existing = _REGISTRY.get(entry.name)
    if existing is not None and existing is not entry:
        raise ValueError(f"duplicate perf cache name: {entry.name!r}")
    _REGISTRY[entry.name] = entry


class LRUCache:
    """A bounded memo table with hit/miss/eviction counters.

    Keys must be hashable; values are arbitrary.  Eviction is
    least-recently-used, implemented with ordered-``dict`` move-to-end.
    When the global perf switch is off (and the cache is not marked
    ``always_on``) lookups bypass the table entirely and are counted as
    ``bypasses`` — they do not pollute the hit/miss ratio.
    """

    __slots__ = ("name", "maxsize", "always_on", "hits", "misses",
                 "evictions", "bypasses", "_data")

    def __init__(self, name: str, maxsize: int = 65536,
                 always_on: bool = False):
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.name = name
        self.maxsize = maxsize
        self.always_on = always_on
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.bypasses = 0
        self._data: Dict[Any, Any] = {}
        _register(self)

    def __len__(self) -> int:
        return len(self._data)

    def get_or_compute(self, key: Any, compute: Callable[[], Any]) -> Any:
        if not (_ENABLED or self.always_on):
            self.bypasses += 1
            return compute()
        data = self._data
        value = data.get(key, _MISSING)
        if value is not _MISSING:
            self.hits += 1
            if len(data) >= self.maxsize:
                # Refresh recency only under eviction pressure: below
                # capacity the insertion order is never consulted, so the
                # move-to-end would be pure per-hit overhead.
                del data[key]
                data[key] = value
            return value
        self.misses += 1
        value = compute()
        data[key] = value
        if len(data) > self.maxsize:
            # dicts iterate in insertion order: the first key is LRU.
            data.pop(next(iter(data)))
            self.evictions += 1
        return value

    def clear(self) -> None:
        self._data.clear()

    def stats(self) -> Dict[str, Any]:
        lookups = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "bypasses": self.bypasses,
            "size": len(self._data),
            "maxsize": self.maxsize,
            "hit_rate": (self.hits / lookups) if lookups else 0.0,
        }


class InternTable:
    """An unbounded hash-cons table: one canonical object per key.

    Used by :mod:`repro.paths.regex` and :mod:`repro.paths.accessor` to
    make structurally-equal immutable values pointer-equal, which turns
    the deep structural hashing/equality in every downstream memo key
    into near-pointer operations.  Entries are never evicted — the key
    population is bounded by the program's declaration alphabet, not by
    the analysis workload.
    """

    __slots__ = ("name", "hits", "misses", "_data")

    def __init__(self, name: str):
        self.name = name
        self.hits = 0
        self.misses = 0
        self._data: Dict[Any, Any] = {}
        _register(self)

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: Any) -> Optional[Any]:
        value = self._data.get(key)
        if value is not None:
            self.hits += 1
        return value

    def put(self, key: Any, value: Any) -> Any:
        self.misses += 1
        self._data[key] = value
        return value

    def clear(self) -> None:
        self._data.clear()

    def stats(self) -> Dict[str, Any]:
        lookups = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": len(self._data),
            "hit_rate": (self.hits / lookups) if lookups else 0.0,
        }


class EventCounter:
    """Named hit/miss counters with no storage behind them.

    Used where the memoized artifact lives on another object (compiled
    closure entries are cached on the :class:`~repro.lisp.values.Closure`
    itself) but the activity should still flow through the
    ``perf.cache.<name>.*`` counter pipeline.  ``hits`` counts reuse of
    an existing artifact, ``misses`` counts fresh builds.
    """

    __slots__ = ("name", "hits", "misses")

    def __init__(self, name: str):
        self.name = name
        self.hits = 0
        self.misses = 0
        _register(self)

    def clear(self) -> None:
        """Nothing stored here; counters are preserved like the others."""

    def stats(self) -> Dict[str, Any]:
        lookups = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": (self.hits / lookups) if lookups else 0.0,
        }


def named_caches() -> "Dict[str, LRUCache | InternTable | EventCounter]":
    """The live registry of caches and intern tables, by name."""
    return dict(_REGISTRY)


def cache_stats() -> Dict[str, Dict[str, Any]]:
    """Snapshot of every registered cache's counters."""
    return {name: entry.stats() for name, entry in sorted(_REGISTRY.items())}


def clear_caches() -> None:
    """Empty every registered cache (counters are preserved).

    Intern tables are *not* cleared: live interned objects elsewhere in
    the process must keep resolving to themselves, and clearing the
    table while instances survive would silently break pointer
    equality for new structurally-equal values.
    """
    for entry in _REGISTRY.values():
        if isinstance(entry, LRUCache):
            entry.clear()


# Per-recorder snapshot of the last published (hits, misses, evictions)
# so repeated publishes emit deltas, keeping recorder counters additive.
_published: "weakref.WeakKeyDictionary[Any, Dict[str, tuple]]" = (
    weakref.WeakKeyDictionary()
)


def mark_cache_baseline(recorder: Any) -> None:
    """Snapshot the current counter totals for ``recorder`` without
    emitting anything.

    Called when a recorder is *attached* (e.g. by ``Curare``): later
    publishes then export only the activity accrued while attached,
    not whatever the process did beforehand.
    """
    if recorder is None:
        return
    last = _published.setdefault(recorder, {})
    for name, entry in _REGISTRY.items():
        stats = entry.stats()
        last[name] = tuple(stats.get(f, 0) for f in ("hits", "misses",
                                                     "evictions"))


def publish_cache_stats(recorder: Any) -> None:
    """Export cache hit/miss counters through an obs ``Recorder``.

    Emits ``perf.cache.<name>.hits`` / ``.misses`` (and ``.evictions``
    for LRU caches) as counter increments.  Safe to call repeatedly —
    only the delta since the previous publish to *this* recorder is
    emitted, so the recorder's counters track the true totals accrued
    while it was attached.
    """
    if recorder is None:
        return
    last = _published.setdefault(recorder, {})
    for name, entry in sorted(_REGISTRY.items()):
        stats = entry.stats()
        fields = ("hits", "misses", "evictions")
        current = tuple(stats.get(f, 0) for f in fields)
        previous = last.get(name, (0, 0, 0))
        for field, now, before in zip(fields, current, previous):
            delta = now - before
            if delta:
                recorder.count(f"perf.cache.{name}.{field}", delta)
        last[name] = current
