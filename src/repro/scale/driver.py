"""The sharded fan-out driver: sweep jobs across worker processes.

This is the first subsystem in the repository that uses real OS
parallelism rather than the simulated machine.  The shape is the
classic work-queue farm, hardened with the trust-but-verify vocabulary
of the PR-1 robustness runtime:

* each worker process owns a private task queue *and* a private result
  queue, and loops ``get job → execute (through the persistent cache) →
  post result``;
* the parent dispatches one job at a time to idle workers, tracks a
  per-job deadline, and polls every worker's result queue;
* a job that exceeds its deadline gets its worker terminated and is
  marked ``timeout``; a worker that *dies* (hard crash, ``os._exit``)
  marks its in-flight job ``crashed``; in both cases the worker is
  **respawned** and the sweep continues — one bad point cannot take
  down a grid;
* a job that raises inside the worker is caught there and reported as
  ``failed`` (the worker survives).

Results are deterministic: job payloads are pure functions of the job
spec (simulated ticks only), outcomes are returned in grid order, and
which worker computed a point is deliberately *not* part of the
outcome.  ``workers=0`` runs the same loop inline (no subprocesses, no
timeouts) — the reference path the byte-identity tests compare against.

Termination is safe by construction: result pipes are per-worker, so
``terminate()`` landing while a worker's queue feeder thread holds its
pipe lock (the ``multiprocessing`` docs' corruption hazard) can only
ever poison that worker's *own* queue — never a sibling's — and a
respawn replaces both of the slot's queues, so nothing stale survives
into the replacement.  The health check still drains the affected
worker's queue immediately before terminating it, to keep any result
posted at the deadline instead of discarding it.

With ``cache_server=`` set (``host:port`` of ``repro cache-serve``)
each worker fronts its local cache directory with the fleet-shared
store (:class:`repro.scale.cacheclient.NetworkCache`): remote hits are
verified and written through locally, stores are pushed best-effort,
and a dead or poisoned server degrades to per-machine caching.

Observability: with a recorder attached the parent emits one
``scale.job`` span per job (wall clock, ``pid=PID_SCALE``, one track
per worker slot), ``scale.job.*`` status counters, ``scale.cache.*``
counters aggregated from the workers' cache interactions, and a final
``scale.sweep`` rollup event.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
import time
from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.scale.cache import HIT, INVALID, MISS, OFF
from repro.scale.jobs import SweepJob, job_cache_key, run_job

#: Job outcome statuses (the ``scale.job.*`` counter vocabulary).
OK = "ok"
FAILED = "failed"  # the job raised; the worker survived
TIMEOUT = "timeout"  # deadline exceeded; the worker was terminated
CRASHED = "crashed"  # the worker died under the job

#: Parent poll interval while waiting on the result queue, seconds.
_POLL = 0.05


@dataclass
class JobOutcome:
    """What the driver knows about one executed grid point."""

    job: SweepJob
    status: str = OK
    payload: Optional[dict] = None
    error: str = ""
    cache: str = OFF  # hit | miss | invalid | off
    wall_ms: float = 0.0  # parent-observed, *not* part of the report body

    @property
    def ok(self) -> bool:
        return self.status == OK


def _open_cache(cache_dir: Optional[str], cache_server: Optional[str]):
    """The cache a worker (or the inline path) computes through: the
    plain local store, the two-tier network cache, or nothing."""
    if cache_server:
        from repro.scale.cacheclient import NetworkCache

        return NetworkCache(cache_server, local_root=cache_dir)
    if cache_dir:
        from repro.scale.cache import ResultCache

        return ResultCache(cache_dir)
    return None


def _execute(job: SweepJob, cache) -> "tuple[dict, str]":
    """Run one job through the cache; returns (payload, cache status)."""
    if cache is None:
        return run_job(job), OFF
    key = job_cache_key(job)
    status, payload = cache.get(key)
    if status == HIT:
        return payload, HIT
    payload = run_job(job)
    cache.put(key, payload)
    return payload, status  # MISS, or INVALID (poisoned entry discarded)


def _worker_main(worker_id: int, task_q, result_q,
                 cache_dir: Optional[str],
                 cache_server: Optional[str]) -> None:
    """Worker loop: execute jobs until the ``None`` sentinel arrives.

    Exceptions are converted to ``failed`` messages here — only a hard
    death (crash, kill, timeout termination) leaves a job unanswered.
    """
    cache = _open_cache(cache_dir, cache_server)
    while True:
        item = task_q.get()
        if item is None:
            return
        index, job = item
        try:
            payload, cache_status = _execute(job, cache)
            result_q.put((worker_id, index, OK, payload, "", cache_status))
        except Exception as err:
            result_q.put((worker_id, index, FAILED, None,
                          f"{type(err).__name__}: {err}",
                          MISS if cache else OFF))


class _WorkerHandle:
    """One worker slot: process + private task *and* result queues,
    respawnable.  Owning both pipes is the queue-poisoning fix: a
    terminated worker can only ever corrupt its own queues, and
    :meth:`respawn` replaces them wholesale."""

    def __init__(self, ctx, worker_id: int,
                 cache_dir: Optional[str],
                 cache_server: Optional[str] = None):
        self.worker_id = worker_id
        self.ctx = ctx
        self.cache_dir = cache_dir
        self.cache_server = cache_server
        self.task_q = ctx.Queue()
        self.result_q = ctx.Queue()
        self.proc = ctx.Process(
            target=_worker_main,
            args=(worker_id, self.task_q, self.result_q, cache_dir,
                  cache_server),
            daemon=True,
        )
        self.proc.start()

    def respawn(self) -> "_WorkerHandle":
        self.kill()
        self.close_queues()
        return _WorkerHandle(self.ctx, self.worker_id, self.cache_dir,
                             self.cache_server)

    def kill(self) -> None:
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(timeout=2.0)
            if self.proc.is_alive():
                self.proc.kill()
                self.proc.join(timeout=2.0)

    def stop(self) -> None:
        """Graceful shutdown: sentinel, short join, then force."""
        try:
            self.task_q.put(None)
        except (OSError, ValueError):
            pass
        self.proc.join(timeout=2.0)
        self.kill()
        self.close_queues()

    def close_queues(self) -> None:
        """Release the slot's pipes; never blocks on the feeder."""
        for q in (self.task_q, self.result_q):
            try:
                q.close()
                q.cancel_join_thread()
            except (OSError, ValueError):
                pass


@dataclass
class _SweepState:
    """Parent-side bookkeeping shared by the dispatch/collect loop."""

    outcomes: List[Optional[JobOutcome]]
    busy: dict = field(default_factory=dict)  # worker_id -> (index, deadline, start)
    idle: List[int] = field(default_factory=list)
    next_job: int = 0
    done: int = 0
    respawns: int = 0


def run_jobs(
    jobs: List[SweepJob],
    workers: int = 1,
    job_timeout: Optional[float] = None,
    cache_dir: Optional[str] = None,
    cache_server: Optional[str] = None,
    recorder: Any = None,
) -> List[JobOutcome]:
    """Execute a grid; returns outcomes in grid order.

    ``workers=0`` executes inline in this process (reference path; no
    crash isolation, ``job_timeout`` ignored).  ``workers>=1`` fans out
    across that many OS worker processes.  ``cache_server`` fronts the
    local cache with a shared ``repro cache-serve`` instance.
    """
    if workers < 0:
        raise ValueError("workers must be >= 0")
    if workers == 0:
        outcomes = _run_inline(jobs, cache_dir, cache_server, recorder)
    else:
        outcomes = _run_sharded(jobs, workers, job_timeout, cache_dir,
                                cache_server, recorder)
    _record_rollup(recorder, outcomes, workers)
    return outcomes


def _run_inline(jobs: List[SweepJob], cache_dir: Optional[str],
                cache_server: Optional[str],
                recorder: Any) -> List[JobOutcome]:
    cache = _open_cache(cache_dir, cache_server)
    outcomes: List[JobOutcome] = []
    for job in jobs:
        start = time.perf_counter()
        _span_begin(recorder, job, tid=0)
        try:
            payload, cache_status = _execute(job, cache)
            outcome = JobOutcome(job, OK, payload, "", cache_status)
        except Exception as err:
            outcome = JobOutcome(job, FAILED, None,
                                 f"{type(err).__name__}: {err}",
                                 MISS if cache else OFF)
        outcome.wall_ms = (time.perf_counter() - start) * 1000.0
        _span_end(recorder, outcome, tid=0)
        outcomes.append(outcome)
    return outcomes


def _run_sharded(
    jobs: List[SweepJob],
    workers: int,
    job_timeout: Optional[float],
    cache_dir: Optional[str],
    cache_server: Optional[str],
    recorder: Any,
) -> List[JobOutcome]:
    # fork shares the warmed parent image where available (Linux/macOS
    # CPython 3.x); spawn is the portable fallback.
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        ctx = multiprocessing.get_context("spawn")
    pool = {
        wid: _WorkerHandle(ctx, wid, cache_dir, cache_server)
        for wid in range(min(workers, max(1, len(jobs))))
    }
    state = _SweepState(outcomes=[None] * len(jobs),
                        idle=sorted(pool, reverse=True))
    try:
        while state.done < len(jobs):
            _dispatch(pool, state, jobs, job_timeout, recorder)
            progressed = _collect(pool, state, jobs, recorder)
            _check_health(pool, state, jobs, recorder)
            if not progressed:
                time.sleep(_POLL)
    finally:
        for handle in pool.values():
            handle.stop()
    return [o if o is not None else JobOutcome(jobs[i], CRASHED)
            for i, o in enumerate(state.outcomes)]


def _collect(pool, state: _SweepState, jobs, recorder) -> bool:
    """Drain every worker's result queue; True if anything resolved."""
    progressed = False
    for wid in list(pool):
        handle = pool[wid]
        while True:
            try:
                msg = handle.result_q.get_nowait()
            except queue_mod.Empty:
                break
            except (OSError, ValueError):
                break  # slot's queue is gone; health check handles it
            _finish(pool, state, jobs, msg, recorder)
            progressed = True
    return progressed


def _dispatch(pool, state: _SweepState, jobs, job_timeout, recorder) -> None:
    while state.idle and state.next_job < len(jobs):
        wid = state.idle.pop()
        if not pool[wid].proc.is_alive():
            # A slot can reach the idle list with a dead process when a
            # health-check drain resolved the worker's final result
            # after the process exited.  Dispatching to its (unread)
            # task queue would strand the job, so replace the worker
            # first.
            pool[wid] = pool[wid].respawn()
            state.respawns += 1
            if recorder is not None:
                recorder.count("scale.worker.respawns")
        index = state.next_job
        state.next_job += 1
        now = time.monotonic()
        deadline = now + job_timeout if job_timeout else None
        pool[wid].task_q.put((index, jobs[index]))
        state.busy[wid] = (index, deadline, now)
        _span_begin(recorder, jobs[index], tid=wid)


def _finish(pool, state: _SweepState, jobs, msg, recorder) -> None:
    wid, index, status, payload, error, cache_status = msg
    claimed = state.busy.get(wid)
    if claimed is None or claimed[0] != index or state.outcomes[index]:
        return  # stale message from a worker we already gave up on
    _, _, started = claimed
    outcome = JobOutcome(jobs[index], status, payload, error, cache_status)
    outcome.wall_ms = (time.monotonic() - started) * 1000.0
    state.outcomes[index] = outcome
    state.done += 1
    del state.busy[wid]
    state.idle.append(wid)
    _span_end(recorder, outcome, tid=wid)


def _check_health(pool, state: _SweepState, jobs, recorder) -> None:
    now = time.monotonic()
    for wid in list(state.busy):
        # Re-read instead of trusting the snapshot: the drain below runs
        # _finish, which can resolve (and delete) busy entries before
        # the loop reaches them.
        claimed = state.busy.get(wid)
        if claimed is None:
            continue  # an earlier drain this pass already resolved it
        index, deadline, started = claimed
        timed_out = deadline is not None and now > deadline
        dead = not pool[wid].proc.is_alive()
        if not (timed_out or dead):
            continue
        # The worker may have posted its result just before dying or
        # right at its deadline; drain ITS queue once before giving up
        # on the job.  Only this worker's queue can be affected by the
        # termination below — result pipes are per-worker.
        try:
            while True:
                _finish(pool, state, jobs,
                        pool[wid].result_q.get_nowait(), recorder)
        except (queue_mod.Empty, OSError, ValueError):
            pass
        if wid not in state.busy:
            # The drain resolved this worker's job.  If the process is
            # dead, _finish still put the slot on the idle list — that
            # is fine: _dispatch respawns dead idle workers before
            # handing them a job.
            continue
        status = TIMEOUT if timed_out else CRASHED
        outcome = JobOutcome(
            jobs[index], status, None,
            "job deadline exceeded; worker terminated" if timed_out
            else "worker process died; job marked failed, worker respawned",
            MISS if (pool[wid].cache_dir or pool[wid].cache_server) else OFF,
        )
        outcome.wall_ms = (now - started) * 1000.0
        state.outcomes[index] = outcome
        state.done += 1
        del state.busy[wid]
        pool[wid] = pool[wid].respawn()
        state.respawns += 1
        state.idle.append(wid)
        if recorder is not None:
            recorder.count("scale.worker.respawns")
        _span_end(recorder, outcome, tid=wid)


# -- observability ----------------------------------------------------------

def _span_begin(recorder, job: SweepJob, tid: int) -> None:
    if recorder is None:
        return
    from repro.obs.recorder import PID_SCALE

    recorder.begin("scale.job", "scale", pid=PID_SCALE, tid=tid,
                   args={"job": job.id, "family": job.family})


def _span_end(recorder, outcome: JobOutcome, tid: int) -> None:
    if recorder is None:
        return
    from repro.obs.recorder import PID_SCALE

    recorder.end("scale.job", "scale", pid=PID_SCALE, tid=tid,
                 args={"job": outcome.job.id, "status": outcome.status,
                       "cache": outcome.cache})
    recorder.count(f"scale.job.{outcome.status}")
    recorder.observe("scale.job.ms", outcome.wall_ms)


def _record_rollup(recorder, outcomes: List[JobOutcome],
                   workers: int) -> None:
    if recorder is None:
        return
    from repro.obs.recorder import PID_SCALE

    for outcome in outcomes:
        if outcome.cache != OFF:
            recorder.count(f"scale.cache.{outcome.cache}")
            if outcome.ok and outcome.cache in (MISS, INVALID):
                recorder.count("scale.cache.stores")
    recorder.event(
        "scale.sweep", "scale", pid=PID_SCALE,
        args={
            "jobs": len(outcomes),
            "workers": workers,
            "ok": sum(1 for o in outcomes if o.status == OK),
            "failed": sum(1 for o in outcomes if o.status == FAILED),
            "timeout": sum(1 for o in outcomes if o.status == TIMEOUT),
            "crashed": sum(1 for o in outcomes if o.status == CRASHED),
        },
    )
