"""The distance-stage job runner: analyze one function, no transform.

This module exists for two reasons:

* ``repro sweep --grid cache`` needs analyze-only points whose cache
  keys survive transform edits, so they must be computed by code whose
  import closure excludes ``repro.transform``.
* Its own import closure *is* the ``distance`` stage fingerprint
  (``repro.scale.fingerprint.STAGE_ROOTS["distance"]`` roots here), so
  "what code can change this payload" and "what code re-keys it" are
  the same set by construction.

It deliberately mirrors ``Curare.load_program`` + ``Curare.analyze``
(evaluate forms, absorb declaims, run the §2/§3.1 analysis) without
going through ``repro.api`` or ``transform.pipeline`` — either would
drag the transform passes into the closure and re-create exactly the
over-invalidation the staged cache removes.  ``tests/test_stage_cache``
pins the payload against ``api.analyze`` field by field so the two
paths cannot drift silently.
"""

from __future__ import annotations

import math
from typing import Any, Dict


def _num(value: Any) -> Any:
    """JSON-safe number: non-finite floats become their string form."""
    if isinstance(value, float) and not math.isfinite(value):
        return str(value)
    return value


def run_analysis_job(source: str, function: str,
                     assume_sapp: bool = True) -> Dict[str, Any]:
    """Load ``source``, analyze ``function``, return a plain-JSON
    summary of the §6 feedback report (deterministic, cache-ready)."""
    from repro.analysis.conflicts import analyze_function
    from repro.analysis.report import explain
    from repro.declare.parser import extract_declarations
    from repro.declare.registry import DeclarationRegistry
    from repro.lisp.interpreter import Interpreter
    from repro.lisp.runner import SequentialRunner
    from repro.sexpr.datum import intern

    interp = Interpreter()
    runner = SequentialRunner(interp)
    decls = DeclarationRegistry()
    forms = interp.load(source)
    declarations, rest = extract_declarations(forms)
    decls.extend(declarations)
    for form in rest:
        runner.eval_form(form)

    analysis = analyze_function(
        interp, intern(function), decls=decls, assume_sapp=assume_sapp
    )
    feedback = explain(analysis)
    return {
        "function": feedback.function,
        "transformable": bool(feedback.transformable),
        "concurrency": _num(feedback.concurrency),
        "lock_bound": _num(feedback.lock_bound),
        "active_conflicts": len(analysis.active_conflicts()),
        "dismissed_conflicts": len(analysis.dismissed_conflicts()),
        "lines": list(feedback.lines),
        "suggestions": list(feedback.suggestions),
    }
