"""The sweep grids behind ``repro sweep --grid NAME``.

Each grid is a list of :class:`~repro.scale.jobs.SweepJob` specs in a
fixed, deterministic order (the order is part of the report contract).
``smoke`` is the CI grid: one representative point per family, small
enough to finish in seconds; the figure grids reproduce the paper's
curves at useful resolution; ``full`` concatenates all of them.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.scale.jobs import SweepJob


def _job(family: str, **params) -> SweepJob:
    coords = ",".join(f"{k}={params[k]}" for k in sorted(params))
    return SweepJob(id=f"{family}/{coords}", family=family, params=params)


def _fig06_grid(sizes=(4, 8, 12, 16)) -> List[SweepJob]:
    return [_job("fig06", size=s) for s in sizes]


def _fig07_grid(
    shapes=((30, 0), (30, 30), (30, 90), (15, 105), (10, 110)),
    processors=(4, 16),
    depth=24,
) -> List[SweepJob]:
    return [
        _job("fig07", head=h, tail=t, processors=p, depth=depth)
        for p in processors
        for h, t in shapes
    ]


def _fig10_grid(
    servers=(1, 2, 3, 4, 6, 8, 12, 16), depth=32, head=8, tail=40
) -> List[SweepJob]:
    return [
        _job("fig10", depth=depth, head=head, tail=tail, servers=s)
        for s in servers
    ]


def _model_grid() -> List[SweepJob]:
    return [
        _job("model", depth=d, head=h, tail=t,
             servers=[1, 2, 4, 8, 12, 16])
        for d, h, t in ((32, 8, 40), (24, 16, 48))
    ]


def _smoke_grid() -> List[SweepJob]:
    return [
        _job("fig06", size=6),
        _job("fig06", size=8),
        _job("fig07", head=20, tail=60, processors=4, depth=12),
        _job("fig07", head=20, tail=0, processors=4, depth=12),
        _job("fig10", depth=16, head=8, tail=40, servers=2),
        _job("fig10", depth=16, head=8, tail=40, servers=4),
        _job("model", depth=16, head=8, tail=40, servers=[1, 2, 4, 8]),
    ]


def _cache_grid() -> List[SweepJob]:
    """The staged-cache demonstration grid (CI ``cache-smoke``, the
    cache bench): 28 analyze-family points — distance-stage keys,
    immune to transform edits — plus 2 transform-dependent points.
    Warm after a one-transform edit, 28 of 30 points must still hit:
    93.3%, which clears the ``--min-hit-rate 90`` gate exactly when
    stage keying works and fails when anything leaks transform code
    into the early-stage fingerprints."""
    jobs = [
        _job("analyze", head=h, tail=t)
        for h in (5, 10, 15, 20, 25, 30, 35)
        for t in (0, 30, 60, 90)
    ]
    jobs.append(_job("fig07", head=20, tail=60, processors=4, depth=12))
    jobs.append(_job("fig10", depth=16, head=8, tail=40, servers=2))
    return jobs


def _full_grid() -> List[SweepJob]:
    return _fig06_grid() + _fig07_grid() + _fig10_grid() + _model_grid()


_GRIDS: Dict[str, Callable[[], List[SweepJob]]] = {
    "smoke": _smoke_grid,
    "fig06": _fig06_grid,
    "fig07": _fig07_grid,
    "fig10": _fig10_grid,
    "model": _model_grid,
    "cache": _cache_grid,
    "full": _full_grid,
}


def grid_names() -> List[str]:
    return list(_GRIDS)


def grid_jobs(name: str) -> List[SweepJob]:
    """The jobs of a named grid, in report order."""
    factory = _GRIDS.get(name)
    if factory is None:
        raise KeyError(name)
    jobs = factory()
    seen = set()
    for job in jobs:
        if job.id in seen:
            raise ValueError(f"duplicate job id in grid {name!r}: {job.id}")
        seen.add(job.id)
    return jobs
