"""Sweep report assembly: one JSON document per ``repro sweep``.

The document is a :mod:`repro.envelope` envelope of kind ``"sweep"``:
``{"schema_version": 1, "kind": "sweep", "body": {...}}``.  The body
has a strict determinism contract: everything outside its ``"wall"``
section is a pure function of (grid, cache starting state) — running
the same grid with ``--workers 8`` or ``--workers 1`` must produce
byte-identical deterministic sections.  All wall-clock measurements,
the worker count, and anything else that may legitimately differ
between runs live under ``body["wall"]``; :func:`strip_wall` removes
exactly that section, and the tests compare :func:`dumps_report` bytes
of the stripped documents.
"""

from __future__ import annotations

import sys
from typing import Any, Dict, List

from repro.envelope import KIND_SWEEP, dumps, strip_wall as _strip_body, wrap
from repro.scale.driver import OK, JobOutcome


def build_report(
    grid: str,
    outcomes: List[JobOutcome],
    workers: int,
    cache_dir: "str | None",
    total_wall_ms: float,
    cache_server: "str | None" = None,
) -> Dict[str, Any]:
    """Assemble the enveloped report from a sweep's outcomes."""
    points = [
        {
            "id": o.job.id,
            "family": o.job.family,
            "params": dict(o.job.params),
            "status": o.status,
            "cache": o.cache,
            "error": o.error,
            "result": o.payload,
        }
        for o in outcomes
    ]
    cache = {
        "enabled": cache_dir is not None or cache_server is not None,
        "hits": sum(1 for o in outcomes if o.cache == "hit"),
        "misses": sum(1 for o in outcomes if o.cache == "miss"),
        "invalid": sum(1 for o in outcomes if o.cache == "invalid"),
    }
    lookups = cache["hits"] + cache["misses"] + cache["invalid"]
    cache["hit_rate"] = round(cache["hits"] / lookups, 4) if lookups else 0.0
    body = {
        "grid": grid,
        "points": points,
        "summary": _summarize(outcomes),
        "cache": cache,
        "wall": {
            "workers": workers,
            "total_ms": round(total_wall_ms, 3),
            "per_point_ms": {o.job.id: round(o.wall_ms, 3)
                             for o in outcomes},
            "python": sys.version.split()[0],
            "cache_dir": cache_dir,
            "cache_server": cache_server,
        },
    }
    return wrap(KIND_SWEEP, body)


def _summarize(outcomes: List[JobOutcome]) -> Dict[str, Any]:
    """Per-family rollups, including observed-vs-predicted aggregates
    for the families that carry an analytic prediction."""
    summary: Dict[str, Any] = {
        "jobs": len(outcomes),
        "ok": sum(1 for o in outcomes if o.status == OK),
        "failed": [o.job.id for o in outcomes if o.status != OK],
        "families": {},
    }
    by_family: Dict[str, List[JobOutcome]] = {}
    for o in outcomes:
        by_family.setdefault(o.job.family, []).append(o)
    for family, group in sorted(by_family.items()):
        entry: Dict[str, Any] = {
            "points": len(group),
            "ok": sum(1 for o in group if o.status == OK),
        }
        ratios = [
            o.payload["ratio"]
            for o in group
            if o.status == OK and o.payload and "ratio" in o.payload
        ]
        if ratios:
            entry["observed_vs_predicted"] = {
                "min_ratio": min(ratios),
                "max_ratio": max(ratios),
                "mean_ratio": round(sum(ratios) / len(ratios), 4),
            }
        if family == "model":
            entry["model_validated"] = all(
                o.payload.get("argmin_in_band") and o.payload.get("within_2x")
                for o in group
                if o.status == OK and o.payload
            )
        if family == "fig06":
            entry["results_match_sequential"] = all(
                o.payload.get("results_match")
                for o in group
                if o.status == OK and o.payload
            )
        summary["families"][family] = entry
    return summary


def strip_wall(report: Dict[str, Any]) -> Dict[str, Any]:
    """The deterministic document: the envelope with the body's
    wall-time section removed."""
    return {**report, "body": _strip_body(report["body"])}


def dumps_report(report: Dict[str, Any]) -> str:
    """The canonical on-disk serialization (stable key order)."""
    return dumps(report)


def format_sweep(report: Dict[str, Any]) -> str:
    """Human-readable sweep summary for the CLI."""
    body = report["body"]
    summary = body["summary"]
    cache = body["cache"]
    wall = body["wall"]
    lines = [
        f";; sweep: grid={body['grid']} jobs={summary['jobs']} "
        f"ok={summary['ok']} workers={wall['workers']} "
        f"wall={wall['total_ms']:.0f}ms"
    ]
    for family, entry in summary["families"].items():
        parts = [f";;   {family:<6} {entry['ok']}/{entry['points']} ok"]
        ovp = entry.get("observed_vs_predicted")
        if ovp:
            parts.append(
                f"observed/predicted in [{ovp['min_ratio']:.2f}, "
                f"{ovp['max_ratio']:.2f}] (mean {ovp['mean_ratio']:.2f})"
            )
        if "model_validated" in entry:
            parts.append(f"model_validated={entry['model_validated']}")
        if "results_match_sequential" in entry:
            parts.append(
                f"matches_sequential={entry['results_match_sequential']}"
            )
        lines.append(" — ".join(parts))
    if cache["enabled"]:
        lines.append(
            f";;   cache: {cache['hits']} hit(s), {cache['misses']} "
            f"miss(es), {cache['invalid']} invalid, hit rate "
            f"{cache['hit_rate']:.1%}"
        )
    else:
        lines.append(";;   cache: disabled")
    if summary["failed"]:
        lines.append(f";;   FAILED point(s): {', '.join(summary['failed'])}")
    return "\n".join(lines)
