"""Scale-out experiment engine: sharded sweeps + a persistent cache.

The paper's experimental claims (Figures 6/7/10, the §4.1 allocation
model) are *curves over parameter sweeps* — server counts, processor
counts, workload sizes.  Before this package every point was computed
serially in one process, and every ``repro`` invocation re-derived the
same automata and transforms from scratch.  Three pieces fix that:

* :mod:`repro.scale.driver` — a sharded fan-out driver that runs sweep
  jobs across ``multiprocessing`` worker processes with per-worker task
  queues, per-job timeouts, and crash isolation: a worker that dies
  marks its job failed and is respawned (the PR-1 robustness
  vocabulary, applied to OS processes instead of simulated ones).
* :mod:`repro.scale.cache` — a content-addressed persistent on-disk
  result cache (key = SHA-256 of program source + declarations +
  pipeline/cost-model config + the job's *stage fingerprint*), shared
  across worker processes *and* across runs, with payload-hash
  integrity checks so a corrupted entry is discarded and recomputed,
  never trusted.
* :mod:`repro.scale.fingerprint` — per-stage code fingerprints from a
  module-dependency walk, so editing one transform leaves parse /
  analysis / distance entries warm instead of orphaning the cache.
* :mod:`repro.scale.cacheclient` — the fleet-shared tier: a
  write-through client for ``repro cache-serve`` that degrades to
  per-machine caching when the server is dead or poisoned.
* :mod:`repro.scale.grids` / :mod:`repro.scale.jobs` — the sweep
  families (fig06 / fig07 / fig10 / analytic-model validation /
  analyze-only distance jobs) as self-contained, picklable job specs,
  each fully deterministic on the simulated machine.

``repro sweep`` (the CLI) stitches them together and emits one JSON
report (:mod:`repro.scale.report`) whose deterministic body is
byte-identical across worker counts; wall-clock measurements live in a
single separable ``"wall"`` section.  See ``docs/scaling.md``.
"""

from repro.scale.cache import (
    ResultCache,
    cache_key,
    canonical_json,
    check_entry,
    code_version,
    make_entry,
)
from repro.scale.cacheclient import NetworkCache, OpCache
from repro.scale.driver import JobOutcome, run_jobs
from repro.scale.fingerprint import (
    STAGE_ROOTS,
    STAGES,
    module_closure,
    stage_fingerprints,
)
from repro.scale.grids import grid_jobs, grid_names
from repro.scale.jobs import (
    SweepJob,
    job_cache_key,
    job_key_material,
    job_stage,
    run_job,
)
from repro.scale.report import (
    build_report,
    dumps_report,
    format_sweep,
    strip_wall,
)

__all__ = [
    "JobOutcome",
    "NetworkCache",
    "OpCache",
    "ResultCache",
    "STAGES",
    "STAGE_ROOTS",
    "SweepJob",
    "build_report",
    "cache_key",
    "canonical_json",
    "check_entry",
    "code_version",
    "dumps_report",
    "format_sweep",
    "grid_jobs",
    "grid_names",
    "job_cache_key",
    "job_key_material",
    "job_stage",
    "make_entry",
    "module_closure",
    "run_job",
    "run_jobs",
    "stage_fingerprints",
    "strip_wall",
]
