"""The fleet-shared result cache, seen from a worker.

Two layers, both speaking the entry envelope of
:mod:`repro.scale.cache`:

* :class:`NetworkCache` — a drop-in for :class:`ResultCache` (same
  ``get``/``put``/``stats`` surface) that fronts an optional local
  write-through directory with a shared ``repro cache-serve`` server.
  Reads check local first, then the server; a network hit is
  re-verified (``check_entry``: format, key, ``payload_sha256``)
  before it is trusted, then written through to the local store.
  Writes land locally and are pushed to the server best-effort.

  **The server is an accelerator, never a dependency.**  Any transport
  failure marks it down for ``retry_after_s`` and the cache degrades
  to exactly the per-machine behavior it had before the server
  existed; a *poisoned* server (entries whose integrity hash does not
  match) degrades the same way per-entry — the bad entry reads as a
  miss and the caller recomputes.  Correctness never depends on the
  cache tier.

* :class:`OpCache` — the same two-tier store keyed at the facade-op
  level (``analyze`` / ``transform`` / ``run`` / ``sweep`` params →
  result document), used by serve shards and the router so one shard's
  computation warms every peer.  Op keys carry the op's stage
  fingerprint (:data:`OP_STAGES`), so ``analyze`` results survive
  transform edits just like analyze-family sweep jobs.

The wire format is the ``repro serve`` NDJSON protocol
(:mod:`repro.serve.protocol`), one short-lived connection per call —
the same failure model as the router's backend transport.
"""

from __future__ import annotations

import socket
import time
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.scale.cache import (
    HIT,
    INVALID,
    MISS,
    ResultCache,
    cache_key,
    check_entry,
    make_entry,
)

#: Facade op → pipeline stage for fingerprint selection.  ``analyze``
#: stops at conflict distances; ``transform`` emits transformed code;
#: ``run``/``sweep`` depend on the simulated machine and the job
#: runners respectively.
OP_STAGES: Dict[str, str] = {
    "analyze": "distance",
    "transform": "transform",
    "run": "machine",
    "sweep": "sweep",
}


def parse_server(spec: str) -> Tuple[str, int]:
    """``host:port`` → ``(host, port)``; raises ValueError."""
    host, sep, port = spec.rpartition(":")
    if not sep or not host or not port.isdigit():
        raise ValueError(f"cache server must be host:port, got {spec!r}")
    return host, int(port)


class CacheTransportError(Exception):
    """A transport-level failure talking to the cache server."""


class _ServerLink:
    """One-connection-per-call NDJSON transport to the cache server."""

    def __init__(self, spec: str, connect_timeout_s: float = 1.0,
                 call_timeout_s: float = 5.0):
        self.spec = spec
        self.host, self.port = parse_server(spec)
        self.connect_timeout_s = connect_timeout_s
        self.call_timeout_s = call_timeout_s

    def call(self, op: str, params: Dict[str, Any]) -> Dict[str, Any]:
        from repro.serve.protocol import decode_response, request_line

        line = request_line(op, params, request_id="c1")
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout_s)
        except OSError as err:
            raise CacheTransportError(str(err)) from None
        try:
            sock.settimeout(max(0.01, self.call_timeout_s))
            try:
                sock.sendall(line)
                buf = b""
                while b"\n" not in buf:
                    chunk = sock.recv(65536)
                    if not chunk:
                        raise CacheTransportError(
                            "connection closed before a full response")
                    buf += chunk
            except socket.timeout:
                raise CacheTransportError(
                    f"no response within {self.call_timeout_s:.3f}s"
                ) from None
            except OSError as err:
                raise CacheTransportError(str(err)) from None
        finally:
            try:
                sock.close()
            except OSError:
                pass
        try:
            return decode_response(buf.split(b"\n", 1)[0])
        except ValueError as err:
            raise CacheTransportError(f"malformed response: {err}") from None


class NetworkCache:
    """Two-tier result cache: optional local directory + shared server.

    ``get``/``put``/``stats`` match :class:`ResultCache`, so the sweep
    driver (and anything else holding a cache) cannot tell the tiers
    apart — except that a warm server turns a cold machine's misses
    into hits.
    """

    def __init__(self, server: str, local_root: "str | Path | None" = None,
                 connect_timeout_s: float = 1.0, call_timeout_s: float = 5.0,
                 retry_after_s: float = 30.0,
                 clock=time.monotonic):
        self.local = ResultCache(local_root) if local_root is not None \
            else None
        self._link = _ServerLink(server, connect_timeout_s, call_timeout_s)
        self._retry_after_s = retry_after_s
        self._clock = clock
        self._down_until = 0.0
        self.hits = 0
        self.misses = 0
        self.invalid = 0
        self.stores = 0
        self.remote_hits = 0
        self.remote_stores = 0
        self.remote_invalid = 0
        self.remote_errors = 0

    # -- server health ------------------------------------------------------

    def server_up(self) -> bool:
        return self._clock() >= self._down_until

    def _mark_down(self) -> None:
        self.remote_errors += 1
        self._down_until = self._clock() + self._retry_after_s

    # -- the ResultCache surface --------------------------------------------

    def get(self, key: str) -> Tuple[str, Optional[dict]]:
        local_status = None
        if self.local is not None:
            local_status, payload = self.local.get(key)
            if local_status == HIT:
                self.hits += 1
                return HIT, payload
        entry = self._remote_get(key)
        if entry is not None:
            self.hits += 1
            self.remote_hits += 1
            payload = entry["payload"]
            if self.local is not None:
                self.local.put(key, payload)
            return HIT, payload
        if local_status == INVALID:
            self.invalid += 1
            return INVALID, None
        self.misses += 1
        return MISS, None

    def put(self, key: str, payload: dict) -> None:
        entry = make_entry(key, payload)
        if self.local is not None:
            self.local._write(key, entry)
        self.stores += 1
        self._remote_put(key, entry)

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalid": self.invalid,
            "stores": self.stores,
            "remote_hits": self.remote_hits,
            "remote_stores": self.remote_stores,
            "remote_invalid": self.remote_invalid,
            "remote_errors": self.remote_errors,
        }

    # -- the wire -----------------------------------------------------------

    def _remote_get(self, key: str) -> Optional[dict]:
        if not self.server_up():
            return None
        try:
            response = self._link.call("cache-get", {"key": key})
        except CacheTransportError:
            self._mark_down()
            return None
        if not response.get("ok"):
            # A typed refusal (draining, bad request) is a server that
            # answered; do not mark it down, just miss.
            return None
        result = response.get("result") or {}
        if not result.get("found"):
            return None
        entry = result.get("entry")
        if not check_entry(entry, key):
            # Poisoned or corrupted in transit: never trust it.
            self.remote_invalid += 1
            return None
        return entry

    def _remote_put(self, key: str, entry: dict) -> None:
        if not self.server_up():
            return
        try:
            response = self._link.call("cache-put",
                                       {"key": key, "entry": entry})
        except CacheTransportError:
            self._mark_down()
            return
        if response.get("ok") and (response.get("result") or {}).get(
                "stored"):
            self.remote_stores += 1


class OpCache:
    """Facade-op results through the shared cache, for serve shards and
    the router.  ``get``/``put`` never raise — a sick cache tier must
    not take the request path down with it."""

    def __init__(self, server: str, local_root: "str | Path | None" = None,
                 **kwargs: Any):
        self.cache = NetworkCache(server, local_root, **kwargs)

    def key(self, op: str, params: Dict[str, Any]) -> str:
        from repro.scale.fingerprint import stage_fingerprints

        stage = OP_STAGES.get(op, "machine")
        return cache_key({
            "kind": "op",
            "stage": stage,
            "fingerprint": stage_fingerprints()[stage],
            "op": op,
            "params": params,
        })

    def get(self, op: str, params: Dict[str, Any]) -> Optional[dict]:
        try:
            status, payload = self.cache.get(self.key(op, params))
        except Exception:
            return None
        return payload if status == HIT else None

    def put(self, op: str, params: Dict[str, Any],
            result: Dict[str, Any]) -> None:
        try:
            self.cache.put(self.key(op, params), result)
        except Exception:
            pass

    def stats(self) -> dict:
        return self.cache.stats()
