"""Per-stage code fingerprints for the staged result cache.

The pipeline is a chain of pure stages — parse → variable analysis →
conflict distances → transform → simulated machine — and each stage's
output depends only on the code that stage (transitively) imports.
Keying cache entries on one whole-package digest (the original
``code_version()``) therefore over-invalidates: editing one transform
rewrote every key, including the parse/analysis/distance entries whose
inputs did not change.

This module computes one fingerprint *per stage* from a static
module-dependency walk:

* :func:`module_closure` parses each module with :mod:`ast` and follows
  every ``import repro...`` / ``from repro... import ...`` edge —
  including the engine's pervasive *function-level* lazy imports, which
  a top-of-file scan would miss — to a transitive closure of source
  files.
* :func:`stage_fingerprints` hashes each stage's closure (SHA-256 over
  sorted relative path + file bytes) from the :data:`STAGE_ROOTS` root
  modules.  Stages are cumulative (``parse ⊆ analysis ⊆ distance ⊆
  transform``), so an edit invalidates its own stage and everything
  downstream, never upstream.

Soundness rests on two facts, both pinned by tests:

1. **The front of the pipeline never imports the back.**  The
   ``sexpr`` / ``lisp`` / ``declare`` / ``analysis`` / ``paths`` /
   ``ir`` packages have no import path to ``repro.transform`` (or the
   runtime/model/harness layers), so the parse/analysis/distance
   closures genuinely exclude transform code
   (``tests/test_stage_cache.py`` edits a transform on disk and asserts
   the early fingerprints hold still).
2. **Thin orchestration is excluded by contract.**  The facade plumbing
   in ``api.py``, the pass-driver wrappers in ``transform/pipeline.py``
   and the job dispatch in ``scale/jobs.py`` move values between stages
   without computing stage semantics; early-stage closures deliberately
   do not include them.  A behavior-changing edit to orchestration
   must bump :data:`repro.scale.cache.CACHE_FORMAT` (the existing
   orphan-everything escape hatch).

``root_path`` lets callers fingerprint a *copy* of the package — the
differential tests and ``benchmarks/bench_cache.py`` copy the tree,
edit one transform module in the copy, and compare fingerprints without
touching the live source.
"""

from __future__ import annotations

import ast
import hashlib
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

#: The stages, pipeline order.  ``parse``/``analysis``/``distance``/
#: ``transform`` are the paper's chain; ``machine`` covers full
#: simulated-machine results (closure of the whole facade); ``sweep``
#: covers sweep-job payloads (closure of the job runners).
STAGES = ("parse", "analysis", "distance", "transform", "machine", "sweep")

_PARSE_ROOTS = (
    "repro.sexpr.reader",
    "repro.sexpr.printer",
    "repro.lisp.interpreter",
    "repro.lisp.runner",
    "repro.declare.parser",
    "repro.declare.registry",
)
_ANALYSIS_ROOTS = _PARSE_ROOTS + (
    "repro.analysis.variables",
    "repro.analysis.recursion",
    "repro.analysis.headtail",
)
_DISTANCE_ROOTS = _ANALYSIS_ROOTS + (
    "repro.analysis.conflicts",
    "repro.analysis.report",
    "repro.scale.analysis_job",
)
_TRANSFORM_ROOTS = _DISTANCE_ROOTS + (
    "repro.transform.pipeline",
    "repro.transform.program",
)

#: Stage → root modules whose import closure defines the stage's code.
STAGE_ROOTS: Dict[str, Tuple[str, ...]] = {
    "parse": _PARSE_ROOTS,
    "analysis": _ANALYSIS_ROOTS,
    "distance": _DISTANCE_ROOTS,
    "transform": _TRANSFORM_ROOTS,
    "machine": ("repro.api",),
    "sweep": ("repro.scale.jobs",),
}


def _package_root(root_path: "str | Path | None") -> Path:
    if root_path is not None:
        return Path(root_path)
    import repro

    return Path(repro.__file__).parent


def _resolve(name: str, root: Path) -> Optional[Path]:
    """Dotted ``repro...`` name → source file under ``root`` (the
    ``repro`` package directory), or None if it is not a module here."""
    if name != "repro" and not name.startswith("repro."):
        return None
    parts = name.split(".")[1:]
    if not parts:
        path = root / "__init__.py"
        return path if path.is_file() else None
    module = root.joinpath(*parts[:-1], parts[-1] + ".py")
    if module.is_file():
        return module
    package = root.joinpath(*parts, "__init__.py")
    return package if package.is_file() else None


def _imported_names(name: str, path: Path, root: Path) -> List[str]:
    """Every ``repro...`` module this file imports, wherever the import
    statement sits (module level or inside a function body)."""
    try:
        tree = ast.parse(path.read_bytes(), filename=str(path))
    except SyntaxError:
        # An unparseable file still participates in the fingerprint by
        # its bytes; it just contributes no edges.
        return []
    is_package = path.name == "__init__.py"
    package_parts = name.split(".") if is_package else name.split(".")[:-1]
    found: List[str] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro" or alias.name.startswith("repro."):
                    found.append(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = package_parts[: len(package_parts) - (node.level - 1)]
                if not base:
                    continue
                module = ".".join(base + ([node.module] if node.module
                                          else []))
            else:
                module = node.module or ""
            if module != "repro" and not module.startswith("repro."):
                continue
            found.append(module)
            for alias in node.names:
                # ``from repro.pkg import name`` may bind a submodule.
                if _resolve(f"{module}.{alias.name}", root) is not None:
                    found.append(f"{module}.{alias.name}")
    return found


def module_closure(roots: Iterable[str],
                   root_path: "str | Path | None" = None) -> Dict[str, Path]:
    """Transitive import closure: dotted name → source file.

    Names that do not resolve under ``root_path`` (e.g. a module that
    exists only in an edited copy) are silently skipped — the closure
    is over what is actually on disk.
    """
    root = _package_root(root_path)
    closure: Dict[str, Path] = {}
    pending: List[str] = list(roots)
    seen: Set[str] = set()
    while pending:
        name = pending.pop()
        if name in seen:
            continue
        seen.add(name)
        path = _resolve(name, root)
        if path is None:
            continue
        closure[name] = path
        pending.extend(_imported_names(name, path, root))
    return closure


def fingerprint(roots: Iterable[str],
                root_path: "str | Path | None" = None) -> str:
    """SHA-256 over the sorted (name, bytes) of a module closure."""
    closure = module_closure(roots, root_path)
    digest = hashlib.sha256()
    for name in sorted(closure):
        digest.update(name.encode("utf-8"))
        digest.update(b"\0")
        digest.update(closure[name].read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


_FINGERPRINTS: Optional[Dict[str, str]] = None


def stage_fingerprints(
    root_path: "str | Path | None" = None,
) -> Dict[str, str]:
    """One fingerprint per stage; memoized for the live package.

    Pass ``root_path`` (a directory laid out like the ``repro``
    package) to fingerprint an edited copy instead — never memoized.
    """
    global _FINGERPRINTS
    if root_path is None and _FINGERPRINTS is not None:
        return dict(_FINGERPRINTS)
    prints = {stage: fingerprint(STAGE_ROOTS[stage], root_path)
              for stage in STAGES}
    if root_path is None:
        _FINGERPRINTS = dict(prints)
    return prints
