"""Sweep job specs and their (deterministic) execution.

A :class:`SweepJob` is a picklable value — family name + parameter
dict — so the same spec can be executed inline, shipped to a
``multiprocessing`` worker, or hashed into a cache key.  ``run_job``
dispatches on the family and returns a JSON-serializable payload whose
every field is derived from the *simulated* machine (ticks, process
counts, analytic predictions) — never from wall time — which is what
makes sweep reports byte-identical across worker counts and what makes
caching them sound.

Families:

* ``fig06`` — the figure-5 recursion on one processor vs the
  sequential reference, over workload sizes (Figure 6's timeline
  collapsed to its observables).
* ``fig07`` — CRI concurrency over a (head, tail, processors) grid:
  predicted (|H|+|T|)/|H| vs the machine's measured mean concurrency.
* ``fig10`` — the §4.1 server pool over S, measured makespan vs the
  analytic T(S) = (⌈d/S⌉−1)(h+t) + (Sh+t).
* ``model`` — the S* = √(d(h+t)/h) validation: a full server sweep in
  one job, comparing the analytic argmin against the empirical one.
* ``analyze`` — distance-stage only: load a synthetic program and run
  the §2/§3.1 analysis (:mod:`repro.scale.analysis_job`), no transform.
  Its cache keys carry the ``distance`` stage fingerprint, so these
  points stay warm across transform edits.
* ``probe`` — a test/chaos fixture (sleep, raise, hard-exit) used by
  the driver tests to exercise timeout handling and crash isolation;
  the same trust-but-verify vocabulary as the PR-1 fault plans.

``job_cache_key`` is the staged-cache entry point: it folds
``job_stage(job)``'s code fingerprint into the key material, replacing
the old whole-package ``code_version`` field.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Callable, Dict

from repro.runtime.clock import FREE_SYNC, CostModel

#: Fixed per-invocation overheads beyond the burn loops (call, test,
#: let, spawn/queue bookkeeping), calibrated once for the synthetic
#: workloads — the same constants the figure benchmarks use.
FIG07_OVERHEAD = 14
FIG10_OVERHEAD = 16


@dataclass(frozen=True)
class SweepJob:
    """One grid point: ``family`` selects the experiment, ``params``
    its coordinates.  ``id`` must be unique within a grid (it keys the
    report and the per-point wall-time table)."""

    id: str
    family: str
    params: Dict[str, Any] = field(default_factory=dict)


def _calibrate(extra_overhead: int) -> "tuple[float, float]":
    """(base, per-unit) dynamic cost of one ``burn`` unit — measured on
    the sequential interpreter, deterministic."""
    from repro.harness.workloads import burn_cost

    base = burn_cost(0)
    per_unit = (burn_cost(100) - base) / 100.0
    return base + extra_overhead, per_unit


def _run_fig06(params: Dict[str, Any]) -> dict:
    from repro.harness.runner import run_sequential, run_transformed
    from repro.harness.workloads import fig5_source, make_int_list

    size = params["size"]
    sequential = run_sequential(
        fig5_source(), make_int_list(size), "(f5 data)",
        read_back="(identity data)",
    )
    concurrent = run_transformed(
        fig5_source(), "f5", make_int_list(size), "(f5-cc data)",
        read_back="(identity data)", processors=params.get("processors", 1),
    )
    stats = concurrent.stats
    return {
        "result": concurrent.result_text,
        "sequential_result": sequential.result_text,
        "results_match": concurrent.result_text == sequential.result_text,
        "sequential_time": sequential.time,
        "total_time": stats.total_time,
        "processes": stats.processes,
        "mean_concurrency": round(stats.mean_concurrency, 4),
        "utilization": round(stats.utilization, 4),
        "context_switches": stats.context_switches,
        "lock_contentions": stats.lock_contentions,
    }


def _run_fig07(params: Dict[str, Any]) -> dict:
    from repro.harness.workloads import make_int_list, make_synthetic
    from repro.lisp.interpreter import Interpreter
    from repro.model.concurrency import cri_concurrency
    from repro.runtime.machine import Machine
    from repro.transform.pipeline import Curare

    head, tail = params["head"], params["tail"]
    depth, processors = params["depth"], params["processors"]
    base, per_unit = _calibrate(FIG07_OVERHEAD)
    h_dyn = base + per_unit * head
    t_dyn = base - FIG07_OVERHEAD + per_unit * tail
    predicted = cri_concurrency(h_dyn, t_dyn)

    work = make_synthetic(head, tail, name="f")
    interp = Interpreter()
    curare = Curare(interp, assume_sapp=True)
    curare.load_program(work.source)
    curare.transform("f")
    curare.runner.eval_text(make_int_list(depth))
    machine = Machine(interp, processors=processors, cost_model=FREE_SYNC)
    machine.spawn_text("(f-cc data)")
    stats = machine.run()
    observed = stats.mean_concurrency
    return {
        "h_dyn": round(h_dyn, 4),
        "t_dyn": round(t_dyn, 4),
        "predicted_concurrency": round(predicted, 4),
        "observed_concurrency": round(observed, 4),
        "ratio": round(observed / predicted, 4),
        "total_time": stats.total_time,
        "processes": stats.processes,
        "utilization": round(stats.utilization, 4),
    }


def _fig10_point(depth: int, head: int, tail: int, servers: int,
                 h_dyn: float, t_dyn: float) -> dict:
    from repro.harness.workloads import make_int_list, make_synthetic
    from repro.lisp.interpreter import Interpreter
    from repro.model.allocation import execution_time
    from repro.runtime.servers import run_server_pool
    from repro.transform.pipeline import Curare

    work = make_synthetic(head, tail, name="f")
    interp = Interpreter()
    curare = Curare(interp, assume_sapp=True)
    curare.load_program(work.source)
    curare.transform("f", mode="enqueue")
    curare.runner.eval_text(make_int_list(depth))
    data = interp.globals.lookup(interp.intern("data"))
    pool = run_server_pool(
        interp, "f-cc", [data], servers=servers, cost_model=FREE_SYNC
    )
    analytic = execution_time(depth, servers, h_dyn, t_dyn)
    return {
        "measured": pool.makespan,
        "analytic": round(analytic, 4),
        "ratio": round(pool.makespan / analytic, 4),
        "invocations": pool.total_invocations,
    }


def _run_fig10(params: Dict[str, Any]) -> dict:
    from repro.model.allocation import optimal_servers

    depth, head, tail = params["depth"], params["head"], params["tail"]
    servers = params["servers"]
    base, per_unit = _calibrate(FIG10_OVERHEAD)
    h_dyn = base + per_unit * head
    t_dyn = base - FIG10_OVERHEAD + per_unit * tail
    point = _fig10_point(depth, head, tail, servers, h_dyn, t_dyn)
    point.update(
        h_dyn=round(h_dyn, 4),
        t_dyn=round(t_dyn, 4),
        s_star=optimal_servers(depth, h_dyn, t_dyn),
    )
    return point


def _run_model(params: Dict[str, Any]) -> dict:
    from repro.model.validation import validate_allocation_model

    depth, head, tail = params["depth"], params["head"], params["tail"]
    base, per_unit = _calibrate(FIG10_OVERHEAD)
    h_dyn = base + per_unit * head
    t_dyn = base - FIG10_OVERHEAD + per_unit * tail
    measured = {
        s: _fig10_point(depth, head, tail, s, h_dyn, t_dyn)["measured"]
        for s in params["servers"]
    }
    return validate_allocation_model(depth, h_dyn, t_dyn, measured)


def _run_analyze(params: Dict[str, Any]) -> dict:
    from repro.harness.workloads import make_synthetic
    from repro.scale.analysis_job import run_analysis_job

    work = make_synthetic(params["head"], params["tail"], name="f")
    return run_analysis_job(
        work.source, "f", assume_sapp=params.get("assume_sapp", True)
    )


def _run_probe(params: Dict[str, Any]) -> dict:
    behavior = params.get("behavior", "ok")
    if behavior == "raise":
        raise RuntimeError(params.get("message", "probe job failure"))
    if behavior == "exit":
        import os

        os._exit(int(params.get("code", 3)))  # simulate a worker crash
    if behavior == "sleep":
        import time

        time.sleep(float(params.get("seconds", 60.0)))
    return {"value": params.get("value", 0)}


_FAMILIES: Dict[str, Callable[[Dict[str, Any]], dict]] = {
    "fig06": _run_fig06,
    "fig07": _run_fig07,
    "fig10": _run_fig10,
    "model": _run_model,
    "analyze": _run_analyze,
    "probe": _run_probe,
}

#: Family → pipeline stage, for fingerprint selection.  Families that
#: run the full transform + simulated machine depend on (nearly) the
#: whole package, so they key on the ``sweep`` closure; ``analyze``
#: stops at conflict distances and keys on the ``distance`` closure.
JOB_STAGES: Dict[str, str] = {"analyze": "distance"}


def job_stage(job: SweepJob) -> str:
    return JOB_STAGES.get(job.family, "sweep")


def run_job(job: SweepJob) -> dict:
    """Execute one grid point; returns the deterministic payload."""
    runner = _FAMILIES.get(job.family)
    if runner is None:
        raise ValueError(f"unknown sweep family {job.family!r}")
    return runner(dict(job.params))


def _program_source(job: SweepJob) -> str:
    """The Lisp source a job analyzes/transforms (declaim forms
    included), for the cache key.  Probe jobs have none."""
    from repro.harness.workloads import fig5_source, make_synthetic

    if job.family == "fig06":
        return fig5_source()
    if job.family in ("fig07", "fig10", "model", "analyze"):
        return make_synthetic(job.params["head"], job.params["tail"],
                              name="f").source
    return ""


def job_key_material(job: SweepJob) -> dict:
    """Everything a cached result depends on *except code*, as one
    canonical dict: the program source (with its ``declaim``
    declarations), the family + grid coordinates, the pipeline
    configuration, the cost-model charges, and the calibration
    overheads.  Code enters the key via :func:`job_cache_key`, which
    wraps this material with the job's stage fingerprint.
    """
    cost = FREE_SYNC if job.family in ("fig07", "fig10", "model") \
        else CostModel()
    return {
        "family": job.family,
        "params": dict(job.params),
        "program": _program_source(job),
        "pipeline": {
            "assume_sapp": True,
            "mode": "enqueue" if job.family in ("fig10", "model")
            else "spawn",
            "suffix": "-cc",
            "overheads": {"fig07": FIG07_OVERHEAD, "fig10": FIG10_OVERHEAD},
        },
        "cost_model": dataclasses.asdict(cost),
    }


def job_cache_key(job: SweepJob,
                  fingerprints: "Dict[str, str] | None" = None) -> str:
    """The staged cache key: stage name + that stage's code fingerprint
    + the job's key material.  ``fingerprints`` overrides the live
    package's fingerprints (the differential tests and the cache bench
    pass fingerprints computed from an edited copy of the tree)."""
    from repro.scale.cache import cache_key
    from repro.scale.fingerprint import stage_fingerprints

    stage = job_stage(job)
    prints = fingerprints if fingerprints is not None \
        else stage_fingerprints()
    return cache_key({
        "stage": stage,
        "fingerprint": prints[stage],
        "material": job_key_material(job),
    })
