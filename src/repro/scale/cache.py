"""Content-addressed persistent result cache for sweep jobs.

Reusing an analysis/transform/simulation result is only sound when the
cached output is *exactly* what a fresh computation would produce — the
output-equivalence discipline of Blanchard & Loulergue (2017), pinned
here with byte identity.  Two mechanisms enforce it:

1. **The key covers every input.**  ``cache_key`` hashes (SHA-256) the
   canonical JSON of the job's full key material: the generated Lisp
   program source (declaim forms included), the pipeline configuration
   (``assume_sapp``, transform mode, …), the cost-model charges, the
   family + parameters, and :func:`code_version` — a digest of every
   ``repro`` source file, so editing any analysis or transform code
   invalidates the whole cache at once.  There is deliberately no
   finer-grained invalidation: a stale hit is a wrong experiment.
2. **Entries carry their own integrity hash.**  A cache file stores the
   payload together with ``payload_sha256`` (hash of the payload's
   canonical JSON).  On read, a missing file is a *miss*; an unreadable
   / syntactically broken / hash-mismatching file is *invalid*: the
   entry is deleted and the caller recomputes.  Corruption can degrade
   performance, never correctness.

Writes are atomic (``os.replace`` of a per-process temp file), so
concurrent sweep workers sharing one cache directory race benignly:
last writer wins with identical bytes.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Optional, Tuple

#: Cache on-disk format version; bump to orphan all existing entries.
CACHE_FORMAT = 1

#: Lookup outcomes (the ``scale.cache.*`` counter vocabulary).
HIT = "hit"
MISS = "miss"
INVALID = "invalid"
OFF = "off"


def canonical_json(obj: Any) -> str:
    """The one serialization both hashing and byte-identity use."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=False)


def sha256_text(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """SHA-256 over every ``repro`` source file, computed once.

    Any edit anywhere in the package — analyses, transforms, the
    machine, the cost model defaults — changes this digest and thereby
    every cache key.  Coarse, but the only invalidation rule that can
    never be wrong.
    """
    global _CODE_VERSION
    if _CODE_VERSION is None:
        import repro

        root = Path(repro.__file__).parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode("utf-8"))
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _CODE_VERSION = digest.hexdigest()
    return _CODE_VERSION


def cache_key(material: dict) -> str:
    """SHA-256 of the canonical JSON of a job's full key material."""
    return sha256_text(canonical_json(material))


class ResultCache:
    """A directory of content-addressed, integrity-checked JSON entries.

    Layout: ``<root>/<key[:2]>/<key>.json`` (fan-out keeps directory
    listings short on big sweeps).  Counters accumulate per instance;
    the sweep driver aggregates worker-side counts into the report and
    the flight recorder.
    """

    def __init__(self, root: "str | Path"):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.invalid = 0
        self.stores = 0

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Tuple[str, Optional[dict]]:
        """Return ``(status, payload)``; status is HIT, MISS, or INVALID.

        INVALID covers every way an entry can be wrong — unreadable
        file, malformed JSON, wrong envelope, format-version or key
        mismatch, payload-hash mismatch — and always deletes the entry
        so the slot is clean for the recompute's store.
        """
        path = self.path_for(key)
        try:
            raw = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            self.misses += 1
            return MISS, None
        except OSError:
            self.invalid += 1
            self._discard(path)
            return INVALID, None
        try:
            entry = json.loads(raw)
            payload = entry["payload"]
            ok = (
                entry.get("format") == CACHE_FORMAT
                and entry.get("key") == key
                and entry.get("payload_sha256")
                == sha256_text(canonical_json(payload))
            )
        except (ValueError, TypeError, KeyError):
            ok = False
            payload = None
        if not ok:
            self.invalid += 1
            self._discard(path)
            return INVALID, None
        self.hits += 1
        return HIT, payload

    def put(self, key: str, payload: dict) -> None:
        """Store a payload atomically under its key."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "format": CACHE_FORMAT,
            "key": key,
            "code_version": code_version(),
            "payload": payload,
            "payload_sha256": sha256_text(canonical_json(payload)),
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(canonical_json(entry) + "\n", encoding="utf-8")
        os.replace(tmp, path)
        self.stores += 1

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass  # already gone, or unremovable — recompute regardless

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalid": self.invalid,
            "stores": self.stores,
        }
