"""Content-addressed persistent result cache for sweep jobs.

Reusing an analysis/transform/simulation result is only sound when the
cached output is *exactly* what a fresh computation would produce — the
output-equivalence discipline of Blanchard & Loulergue (2017), pinned
here with byte identity.  Two mechanisms enforce it:

1. **The key covers every input.**  ``cache_key`` hashes (SHA-256) the
   canonical JSON of the job's full key material: the generated Lisp
   program source (declaim forms included), the pipeline configuration
   (``assume_sapp``, transform mode, …), the cost-model charges, the
   family + parameters, and a *per-stage code fingerprint*
   (:mod:`repro.scale.fingerprint`) — a digest of the import closure of
   exactly the code that computes the job's stage, so editing a
   transform invalidates transform-stage entries while parse /
   analysis / distance entries stay warm.  The invalidation is never
   finer than a stage closure: a stale hit is a wrong experiment.
   (:func:`code_version`, the original whole-package digest, remains as
   provenance recorded in every entry and as the coarse fallback.)
2. **Entries carry their own integrity hash.**  A cache file stores the
   payload together with ``payload_sha256`` (hash of the payload's
   canonical JSON).  On read, a missing file is a *miss*; an unreadable
   / syntactically broken / hash-mismatching file is *invalid*: the
   entry is deleted and the caller recomputes.  Corruption can degrade
   performance, never correctness.

Writes are atomic (``os.replace`` of a per-process temp file), so
concurrent sweep workers sharing one cache directory race benignly:
last writer wins with identical bytes.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Optional, Tuple

#: Cache on-disk format version; bump to orphan all existing entries.
CACHE_FORMAT = 1

#: Lookup outcomes (the ``scale.cache.*`` counter vocabulary).
HIT = "hit"
MISS = "miss"
INVALID = "invalid"
OFF = "off"


def canonical_json(obj: Any) -> str:
    """The one serialization both hashing and byte-identity use."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=False)


def sha256_text(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """SHA-256 over every ``repro`` source file, computed once.

    Any edit anywhere in the package — analyses, transforms, the
    machine, the cost model defaults — changes this digest and thereby
    every cache key.  Coarse, but the only invalidation rule that can
    never be wrong.
    """
    global _CODE_VERSION
    if _CODE_VERSION is None:
        import repro

        root = Path(repro.__file__).parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode("utf-8"))
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _CODE_VERSION = digest.hexdigest()
    return _CODE_VERSION


def cache_key(material: dict) -> str:
    """SHA-256 of the canonical JSON of a job's full key material."""
    return sha256_text(canonical_json(material))


def make_entry(key: str, payload: dict) -> dict:
    """The on-disk/on-wire entry envelope for one cached payload."""
    return {
        "format": CACHE_FORMAT,
        "key": key,
        "code_version": code_version(),
        "payload": payload,
        "payload_sha256": sha256_text(canonical_json(payload)),
    }


def check_entry(entry: Any, key: str) -> bool:
    """True iff ``entry`` is a well-formed, integrity-clean entry for
    ``key``.  Shared by the local store, the cache server (both
    directions of the wire) and the network client — an entry that
    fails here is treated as corrupt everywhere, never served."""
    try:
        payload = entry["payload"]
        return bool(
            entry.get("format") == CACHE_FORMAT
            and entry.get("key") == key
            and entry.get("payload_sha256")
            == sha256_text(canonical_json(payload))
        )
    except (ValueError, TypeError, KeyError):
        return False


class ResultCache:
    """A directory of content-addressed, integrity-checked JSON entries.

    Layout: ``<root>/<key[:2]>/<key>.json`` (fan-out keeps directory
    listings short on big sweeps).  Counters accumulate per instance;
    the sweep driver aggregates worker-side counts into the report and
    the flight recorder.
    """

    def __init__(self, root: "str | Path"):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.invalid = 0
        self.stores = 0

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Tuple[str, Optional[dict]]:
        """Return ``(status, payload)``; status is HIT, MISS, or INVALID.

        INVALID covers every way an entry can be wrong — unreadable
        file, malformed JSON, wrong envelope, format-version or key
        mismatch, payload-hash mismatch — and always deletes the entry
        so the slot is clean for the recompute's store.
        """
        path = self.path_for(key)
        try:
            raw = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            self.misses += 1
            return MISS, None
        except OSError:
            self.invalid += 1
            self._discard(path)
            return INVALID, None
        try:
            entry = json.loads(raw)
        except ValueError:
            entry = None
        if not check_entry(entry, key):
            self.invalid += 1
            self._discard(path)
            return INVALID, None
        self.hits += 1
        return HIT, entry["payload"]

    def put(self, key: str, payload: dict) -> None:
        """Store a payload atomically under its key."""
        self._write(key, make_entry(key, payload))

    def get_entry(self, key: str) -> Optional[dict]:
        """Whole-entry read for the cache server: the wire carries the
        full envelope so clients can re-verify ``payload_sha256``
        end-to-end.  Invalid entries are deleted and read as misses."""
        path = self.path_for(key)
        try:
            raw = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            self.misses += 1
            return None
        except OSError:
            self.invalid += 1
            self._discard(path)
            return None
        try:
            entry = json.loads(raw)
        except ValueError:
            entry = None
        if not check_entry(entry, key):
            self.invalid += 1
            self._discard(path)
            return None
        self.hits += 1
        return entry

    def put_entry(self, key: str, entry: Any) -> bool:
        """Whole-entry write for the cache server.  The entry is
        verified *before* it touches disk — a corrupt or mis-keyed put
        is refused (False), so one bad client cannot poison the shared
        store."""
        if not check_entry(entry, key):
            self.invalid += 1
            return False
        self._write(key, entry)
        return True

    def _write(self, key: str, entry: dict) -> None:
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(canonical_json(entry) + "\n", encoding="utf-8")
        os.replace(tmp, path)
        self.stores += 1

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass  # already gone, or unremovable — recompute regardless

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalid": self.invalid,
            "stores": self.stores,
        }
