"""The flight recorder: structured spans, instants, and metrics.

This is the zero-dependency tracing core the rest of the system hooks
into.  Three producers feed one :class:`Recorder`:

* the **machine** (``runtime/machine.py``) — effect-loop events on the
  *simulated* clock: process lifetimes, lock waits/grants/releases,
  future resolution, race-check verdicts, and an end-of-run rollup;
* the **pipeline** (``transform/pipeline.py``) — per-pass wall-clock
  timing and conflict/lock counters;
* the **harness** (``harness/runner.py``, ``harness/chaos.py``) —
  per-run and per-sweep rollups.

Design constraints, in order:

1. **Pay for what you use.**  Every hook site guards on
   ``recorder is not None``; with no recorder installed the machine's
   effect traces are byte-identical to an uninstrumented run (the same
   guarantee :class:`~repro.runtime.faults.NullFaultPlan` gives for
   fault injection — and locked down by the same kind of test).
2. **Two clock domains, one log.**  Machine events carry simulated-tick
   timestamps; pipeline and harness events carry wall-clock
   microseconds.  The ``pid`` field separates the domains (one Chrome
   "process" per producer), so per-track timestamps stay monotonic.
3. **Structural determinism.**  Under a fixed seed everything except
   wall-clock timestamps and wall-clock histograms is deterministic,
   which is what makes golden-trace testing possible (see
   :mod:`repro.obs.golden`).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

#: Chrome-trace "process" ids — one per producer / clock domain.
PID_PIPELINE = 0  # Curare passes (wall clock)
PID_MACHINE = 1  # simulated machine (tick clock)
PID_HARNESS = 2  # harness rollups (wall clock)
PID_SCALE = 3  # sweep driver (wall clock; one track per worker slot)
PID_SERVE = 4  # analysis service (wall clock; one track per pool thread)
PID_FLEET = 5  # shard router (wall clock; one track per connection thread)

PID_NAMES = {
    PID_PIPELINE: "curare pipeline (wall µs)",
    PID_MACHINE: "machine (simulated ticks)",
    PID_HARNESS: "harness (wall µs)",
    PID_SCALE: "sweep driver (wall µs)",
    PID_SERVE: "analysis service (wall µs)",
    PID_FLEET: "shard router (wall µs)",
}

#: Event phases (a subset of the Chrome trace_event phases).
PH_BEGIN = "B"
PH_END = "E"
PH_INSTANT = "i"

VALID_PHASES = (PH_BEGIN, PH_END, PH_INSTANT)


@dataclass(frozen=True)
class ObsEvent:
    """One recorded observation.

    ``seq``  — global append order (the tie-breaker within a timestamp);
    ``ts``   — timestamp in the producer's clock domain (simulated ticks
               for ``pid == PID_MACHINE``, wall µs otherwise);
    ``ph``   — 'B' (span begin), 'E' (span end), or 'i' (instant);
    ``name`` — event name, dot-namespaced (``lock.wait``, ``proc``, ...);
    ``cat``  — producer category: 'machine' | 'pipeline' | 'harness';
    ``pid``  — producer id (see ``PID_*``);
    ``tid``  — track within the producer (machine: the simulated
               process id; others: 0);
    ``args`` — structured payload (JSON-serializable leaves).
    """

    seq: int
    ts: float
    ph: str
    name: str
    cat: str
    pid: int
    tid: int
    args: dict = field(default_factory=dict)


class Counter:
    """A monotonically accumulating integer metric."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def add(self, n: int = 1) -> None:
        self.value += n


class Histogram:
    """A power-of-two bucketed histogram with running aggregates."""

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        bucket = 0
        mag = 1
        while value > mag:
            bucket += 1
            mag *= 2
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }


class MetricsRegistry:
    """Named counters and histograms, created on first touch."""

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter()
        return counter

    def histogram(self, name: str) -> Histogram:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        return histogram

    def counter_values(self) -> dict[str, int]:
        return {name: c.value for name, c in sorted(self.counters.items())}

    def snapshot(self) -> dict:
        return {
            "counters": self.counter_values(),
            "histograms": {
                name: h.snapshot() for name, h in sorted(self.histograms.items())
            },
        }


class Recorder:
    """An append-only flight recorder: events + metrics.

    One recorder may span several machines, transforms, and harness
    cells (a whole chaos sweep records into a single log); counters
    accumulate across them.
    """

    def __init__(self) -> None:
        self.events: list[ObsEvent] = []
        self.metrics = MetricsRegistry()
        self._seq = 0
        self._t0 = time.perf_counter()

    # -- clocks ------------------------------------------------------------

    def wall(self) -> float:
        """Wall-clock microseconds since the recorder was created."""
        return (time.perf_counter() - self._t0) * 1e6

    # -- events ------------------------------------------------------------

    def event(
        self,
        name: str,
        cat: str,
        ph: str = PH_INSTANT,
        ts: Optional[float] = None,
        pid: int = PID_PIPELINE,
        tid: int = 0,
        args: Optional[dict] = None,
    ) -> ObsEvent:
        if ph not in VALID_PHASES:
            raise ValueError(f"unknown event phase {ph!r}")
        event = ObsEvent(
            seq=self._seq,
            ts=self.wall() if ts is None else float(ts),
            ph=ph,
            name=name,
            cat=cat,
            pid=pid,
            tid=tid,
            args=args if args is not None else {},
        )
        self._seq += 1
        self.events.append(event)
        return event

    def begin(self, name: str, cat: str, ts: Optional[float] = None,
              pid: int = PID_PIPELINE, tid: int = 0,
              args: Optional[dict] = None) -> ObsEvent:
        return self.event(name, cat, PH_BEGIN, ts, pid, tid, args)

    def end(self, name: str, cat: str, ts: Optional[float] = None,
            pid: int = PID_PIPELINE, tid: int = 0,
            args: Optional[dict] = None) -> ObsEvent:
        return self.event(name, cat, PH_END, ts, pid, tid, args)

    @contextmanager
    def span(self, name: str, cat: str, pid: int = PID_PIPELINE,
             tid: int = 0, args: Optional[dict] = None) -> Iterator[None]:
        """A wall-clock span; its duration feeds the ``<name>.us``
        histogram (phase timing)."""
        start = self.wall()
        self.event(name, cat, PH_BEGIN, start, pid, tid, args)
        try:
            yield
        finally:
            stop = self.wall()
            self.event(name, cat, PH_END, stop, pid, tid)
            self.observe(f"{name}.us", stop - start)

    # -- metrics -----------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        self.metrics.counter(name).add(n)

    def observe(self, name: str, value: float) -> None:
        self.metrics.histogram(name).observe(value)

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def events_named(self, name: str) -> list[ObsEvent]:
        return [e for e in self.events if e.name == name]

    def by_track(self) -> dict[tuple[int, int], list[ObsEvent]]:
        out: dict[tuple[int, int], list[ObsEvent]] = {}
        for e in self.events:
            out.setdefault((e.pid, e.tid), []).append(e)
        return out


def check_span_balance(events: list[ObsEvent],
                       allow_open: bool = False) -> list[str]:
    """Verify B/E nesting per (pid, tid) track.

    Returns a list of violation descriptions (empty means well-formed).
    ``allow_open`` tolerates spans still open at the end of the log
    (an aborted machine run leaves its process spans open).
    """
    problems: list[str] = []
    stacks: dict[tuple[int, int], list[str]] = {}
    for e in events:
        track = (e.pid, e.tid)
        stack = stacks.setdefault(track, [])
        if e.ph == PH_BEGIN:
            stack.append(e.name)
        elif e.ph == PH_END:
            if not stack:
                problems.append(f"track {track}: E {e.name!r} without B")
            else:
                top = stack.pop()
                if top != e.name:
                    problems.append(
                        f"track {track}: E {e.name!r} closes B {top!r}"
                    )
    if not allow_open:
        for track, stack in stacks.items():
            if stack:
                problems.append(f"track {track}: unclosed span(s) {stack!r}")
    return problems


def check_monotonic_timestamps(events: list[ObsEvent]) -> list[str]:
    """Per (pid, tid) track, timestamps must never go backwards."""
    problems: list[str] = []
    last: dict[tuple[int, int], float] = {}
    for e in events:
        track = (e.pid, e.tid)
        prev = last.get(track)
        if prev is not None and e.ts < prev:
            problems.append(
                f"track {track}: ts {e.ts} after {prev} (seq {e.seq})"
            )
        last[track] = e.ts
    return problems


def check_lock_wellformedness(events: list[ObsEvent]) -> list[str]:
    """Per (tid, lock key): waits are followed by grants, releases only
    follow grants, and a process never waits twice without an
    intervening grant.

    Accepted per-key sequences are prefixes of ``(wait? grant release)*``
    — a trailing ``wait`` (still blocked) or ``wait? grant`` (still
    holding) is legal, which is exactly the state an aborted run leaves.
    """
    problems: list[str] = []
    # state: 0 = idle, 1 = waiting, 2 = holding
    state: dict[tuple[int, str], int] = {}
    for e in events:
        if e.name not in ("lock.wait", "lock.grant", "lock.release"):
            continue
        if e.name == "lock.wait" and e.ph != PH_BEGIN:
            continue  # the E side of the wait span; the grant covers it
        key = (e.tid, str(e.args.get("key")))
        st = state.get(key, 0)
        if e.name == "lock.wait":
            if st != 0:
                problems.append(f"{key}: wait while in state {st}")
            state[key] = 1
        elif e.name == "lock.grant":
            if st == 2:
                problems.append(f"{key}: grant while already holding")
            state[key] = 2
        else:  # lock.release
            if st != 2:
                problems.append(f"{key}: release while in state {st}")
            state[key] = 0
    return problems
