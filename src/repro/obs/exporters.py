"""Trace exporters: JSON-lines and Chrome ``trace_event`` format.

Two on-disk formats, one in-memory log:

* **JSONL** (``write_jsonl``) — one event object per line, then one
  final ``{"metrics": ...}`` line.  Grep-able, diff-able, streamable.
* **Chrome trace** (``write_chrome_trace``) — the ``trace_event`` JSON
  object format understood by ``chrome://tracing`` and Perfetto
  (https://ui.perfetto.dev): a ``traceEvents`` array of ``B``/``E``/
  ``i``/``M`` phase records.  Metrics ride in ``otherData``.

``validate_chrome_trace`` is the documented schema, executable: the
golden tests, the CLI tests, and any outside consumer all call it.
Non-JSON leaves (lock keys are tuples) are serialized via ``repr``.
"""

from __future__ import annotations

import json
from typing import Any, Iterator, TextIO, Union

from repro.obs.recorder import (
    PID_NAMES,
    PH_BEGIN,
    PH_END,
    Recorder,
    VALID_PHASES,
)

SCHEMA_VERSION = 1


def _dumps(obj: Any) -> str:
    return json.dumps(obj, default=repr, sort_keys=True)


# -- JSON lines -------------------------------------------------------------

def jsonl_lines(recorder: Recorder) -> Iterator[str]:
    """Yield one JSON line per event, then the metrics snapshot."""
    yield _dumps({"schema": "repro-obs-jsonl", "version": SCHEMA_VERSION})
    for e in recorder.events:
        yield _dumps(
            {
                "seq": e.seq,
                "ts": e.ts,
                "ph": e.ph,
                "name": e.name,
                "cat": e.cat,
                "pid": e.pid,
                "tid": e.tid,
                "args": e.args,
            }
        )
    yield _dumps({"metrics": recorder.metrics.snapshot()})


def write_jsonl(recorder: Recorder, dest: Union[str, TextIO]) -> None:
    if isinstance(dest, str):
        with open(dest, "w", encoding="utf-8") as handle:
            write_jsonl(recorder, handle)
        return
    for line in jsonl_lines(recorder):
        dest.write(line + "\n")


# -- Chrome trace_event -----------------------------------------------------

def chrome_trace_dict(recorder: Recorder) -> dict:
    """The ``trace_event`` object-format dict for a recorder's log."""
    trace_events: list[dict] = []
    for pid in sorted({e.pid for e in recorder.events}):
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": PID_NAMES.get(pid, f"producer {pid}")},
            }
        )
    for e in recorder.events:
        record = {
            "name": e.name,
            "cat": e.cat,
            "ph": e.ph,
            "ts": e.ts,
            "pid": e.pid,
            "tid": e.tid,
        }
        if e.args or e.ph != PH_END:
            record["args"] = e.args
        trace_events.append(record)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": "repro-obs-chrome",
            "version": SCHEMA_VERSION,
            "metrics": recorder.metrics.snapshot(),
        },
    }


def write_chrome_trace(recorder: Recorder, dest: Union[str, TextIO]) -> None:
    if isinstance(dest, str):
        with open(dest, "w", encoding="utf-8") as handle:
            write_chrome_trace(recorder, handle)
        return
    dest.write(_dumps(chrome_trace_dict(recorder)))
    dest.write("\n")


def validate_chrome_trace(obj: Any) -> list[str]:
    """Validate a Chrome-trace dict against the documented schema.

    Returns a list of problems; an empty list means the trace is valid
    (and will load in ``chrome://tracing`` / Perfetto).
    """
    problems: list[str] = []
    if not isinstance(obj, dict):
        return [f"top level must be an object, got {type(obj).__name__}"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-array 'traceEvents'"]
    stacks: dict[tuple, list[str]] = {}
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            problems.append(f"traceEvents[{i}] is not an object")
            continue
        ph = e.get("ph")
        if ph == "M":
            continue  # metadata records only need name/pid
        for key, types in (
            ("name", str),
            ("ph", str),
            ("ts", (int, float)),
            ("pid", int),
            ("tid", int),
        ):
            if not isinstance(e.get(key), types):
                problems.append(f"traceEvents[{i}] missing/invalid {key!r}")
        if ph not in VALID_PHASES:
            problems.append(f"traceEvents[{i}] unknown phase {ph!r}")
            continue
        track = (e.get("pid"), e.get("tid"))
        stack = stacks.setdefault(track, [])
        if ph == PH_BEGIN:
            stack.append(e.get("name", ""))
        elif ph == PH_END:
            if not stack:
                problems.append(f"traceEvents[{i}] E without matching B")
            elif stack.pop() != e.get("name"):
                problems.append(f"traceEvents[{i}] E closes a different B")
    other = obj.get("otherData")
    if not isinstance(other, dict) or "metrics" not in other:
        problems.append("missing 'otherData.metrics'")
    return problems


# -- human-readable profile -------------------------------------------------

def render_profile(recorder: Recorder) -> str:
    """The ``--profile`` summary: phase timings then counters."""
    lines = [";; profile"]
    snap = recorder.metrics.snapshot()
    histograms = snap["histograms"]
    if histograms:
        lines.append(";;   phase timings:")
        for name, h in histograms.items():
            if not name.endswith(".us"):
                continue
            lines.append(
                f";;     {name[:-3]:<28} n={h['count']:<4} "
                f"mean={h['mean']:.0f}µs total={h['total']:.0f}µs"
            )
        other = [n for n in histograms if not n.endswith(".us")]
        if other:
            lines.append(";;   distributions:")
            for name in other:
                h = histograms[name]
                lines.append(
                    f";;     {name:<28} n={h['count']:<4} "
                    f"mean={h['mean']:.1f} max={h['max']}"
                )
    counters = snap["counters"]
    if counters:
        lines.append(";;   counters:")
        for name, value in counters.items():
            lines.append(f";;     {name:<28} {value}")
    lines.append(f";;   events recorded: {len(recorder.events)}")
    return "\n".join(lines)
