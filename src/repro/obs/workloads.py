"""Named, seeded workloads for ``repro trace`` and the golden suite.

Each entry reproduces one of the paper's figures on the simulated
machine with the flight recorder armed end to end (pipeline, machine,
harness).  The registry is deliberately tiny and fully deterministic
under the default FIFO schedule — that is what makes the golden traces
in ``tests/golden/`` stable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.harness.workloads import (
    fig3_source,
    fig4_source,
    fig5_source,
    fig8_source,
    make_int_list,
    make_synthetic,
    make_tree,
    remq_source,
    tree_sum_source,
)


@dataclass(frozen=True)
class TraceWorkload:
    """One traceable workload: transform ``fname``, run ``call``."""

    name: str
    description: str
    program: str
    fname: str
    setup: str
    call: str  # contains {fn}, formatted with the transformed name
    read_back: Optional[str] = None
    processors: int = 4


def trace_workloads() -> dict[str, TraceWorkload]:
    """The registry, keyed by CLI name."""
    entries = [
        TraceWorkload(
            name="fig03",
            description="figure 3: recursive list printer",
            program=fig3_source(),
            fname="f3",
            setup=make_int_list(8),
            call="({fn} data)",
        ),
        TraceWorkload(
            name="fig04",
            description="figure 4: distance-1 shifter",
            program=fig4_source(),
            fname="f4",
            setup=make_int_list(8),
            call="({fn} data)",
            read_back="(identity data)",
        ),
        TraceWorkload(
            name="fig05",
            description="figure 5: running sum with a distance-1 conflict",
            program=fig5_source(),
            fname="f5",
            setup=make_int_list(8),
            call="({fn} data)",
            read_back="(identity data)",
        ),
        TraceWorkload(
            name="fig06",
            description="figure 6: the figure-5 timeline on one processor",
            program=fig5_source(),
            fname="f5",
            setup=make_int_list(8),
            call="({fn} data)",
            read_back="(identity data)",
            processors=1,
        ),
        TraceWorkload(
            name="fig07",
            description="figure 7: CRI concurrency on the figure-5 recursion",
            program=fig5_source(),
            fname="f5",
            setup=make_int_list(12),
            call="({fn} data)",
            read_back="(identity data)",
            processors=4,
        ),
        TraceWorkload(
            name="fig08",
            description="figure 8: reorderable accumulator",
            program="(declaim (reorderable +))\n" + fig8_source(),
            fname="f8",
            setup=f"(setq a 0) {make_int_list(8)}",
            call="({fn} data)",
            read_back="(identity a)",
        ),
        TraceWorkload(
            name="fig10",
            description="figure 10: synthetic (h,t) recursion, the "
                        "execution-time workload",
            program=make_synthetic(8, 40, name="f").source,
            fname="f",
            setup=make_int_list(16),
            call="({fn} data)",
            read_back="(identity data)",
            processors=4,
        ),
        TraceWorkload(
            name="remq",
            description="figure 12: remq via destination-passing style",
            program=remq_source(),
            fname="remq",
            setup=make_int_list(8),
            call="({fn} 3 data)",
        ),
        TraceWorkload(
            name="tree",
            description="two-call-site tree recursion",
            program=tree_sum_source(),
            fname="tree-scale",
            setup=make_tree(3),
            call="({fn} tree)",
            read_back="(identity tree)",
        ),
    ]
    return {w.name: w for w in entries}


def run_trace_workload(workload: TraceWorkload, recorder,
                       seed: Optional[int] = None,
                       processors: Optional[int] = None):
    """Run one registry workload with the recorder armed everywhere.

    Returns the :class:`~repro.harness.runner.ExperimentRun`.
    """
    from repro.harness.runner import run_transformed

    return run_transformed(
        workload.program,
        workload.fname,
        workload.setup,
        workload.call.format(fn=workload.fname + "-cc"),
        read_back=workload.read_back,
        processors=processors if processors is not None else workload.processors,
        assume_sapp=True,
        policy="random" if seed is not None else "fifo",
        seed=seed,
        # Explicit stream: replays with equal seeds stay identical even
        # if something else consumes the process-global `random` state.
        rng=random.Random(seed) if seed is not None else None,
        recorder=recorder,
    )
