"""Flight-recorder observability for the machine and pipeline.

See :mod:`repro.obs.recorder` for the core, :mod:`repro.obs.exporters`
for the on-disk formats, :mod:`repro.obs.golden` for structural
golden-trace comparison, and :mod:`repro.obs.workloads` for the named
workloads behind ``repro trace``.  ``docs/observability.md`` documents
the event schema.
"""

from repro.obs.exporters import (
    chrome_trace_dict,
    jsonl_lines,
    render_profile,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.recorder import (
    Counter,
    Histogram,
    MetricsRegistry,
    ObsEvent,
    PH_BEGIN,
    PH_END,
    PH_INSTANT,
    PID_HARNESS,
    PID_MACHINE,
    PID_PIPELINE,
    PID_SCALE,
    PID_SERVE,
    Recorder,
    check_lock_wellformedness,
    check_monotonic_timestamps,
    check_span_balance,
)

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "ObsEvent",
    "PH_BEGIN",
    "PH_END",
    "PH_INSTANT",
    "PID_HARNESS",
    "PID_MACHINE",
    "PID_PIPELINE",
    "PID_SCALE",
    "PID_SERVE",
    "Recorder",
    "check_lock_wellformedness",
    "check_monotonic_timestamps",
    "check_span_balance",
    "chrome_trace_dict",
    "jsonl_lines",
    "render_profile",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
