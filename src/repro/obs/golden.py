"""Structural golden-trace comparison.

A recorded trace has three ingredient classes:

1. **structure** — event kinds, names, ordering, track layout, and
   integer payloads derived from the simulation (process ids, tick
   counts, conflict counts).  Deterministic under a fixed seed.
2. **wall clock** — pipeline/harness timestamps and ``*.us``
   histograms.  Never reproducible.
3. **process-global ids** — cons-cell and future ids come from
   interpreter-global counters, so their absolute values depend on how
   much Lisp ran earlier in the Python process.  Reproducible in
   *pattern* but not in value.

The golden tests pin (1): :func:`structural_projection` keeps
structure, drops wall clock, and canonicalizes global ids by order of
first appearance (``L0, L1, ...`` for lock keys, ``F0, F1, ...`` for
futures).  Two traces of the same seeded run — recorded in different
Python processes, years apart — project identically.
"""

from __future__ import annotations

from typing import Any

#: args keys holding process-global ids, canonicalized by first appearance.
_KEY_ARGS = ("key",)
_FUTURE_ARGS = ("future",)
#: args keys whose values are wall-clock derived and must be dropped.
_VOLATILE_ARGS = ("us", "wall_us")


def structural_projection(trace: dict) -> dict:
    """Project a Chrome-trace dict onto its deterministic skeleton."""
    keys: dict[str, str] = {}
    futures: dict[str, str] = {}

    def canon(table: dict[str, str], prefix: str, value: Any) -> str:
        text = repr(value)
        if text not in table:
            table[text] = f"{prefix}{len(table)}"
        return table[text]

    events = []
    for e in trace.get("traceEvents", []):
        if e.get("ph") == "M":
            events.append(["M", e.get("name"), e.get("pid")])
            continue
        args = dict(e.get("args") or {})
        for name in _VOLATILE_ARGS:
            args.pop(name, None)
        for name in _KEY_ARGS:
            if name in args:
                args[name] = canon(keys, "L", args[name])
        for name in _FUTURE_ARGS:
            if name in args:
                args[name] = canon(futures, "F", args[name])
        record = [e.get("ph"), e.get("name"), e.get("cat"),
                  e.get("pid"), e.get("tid"), args]
        # Machine timestamps are simulated ticks — deterministic, so
        # they are part of the structure; wall-clock ones are not.
        from repro.obs.recorder import PID_MACHINE

        if e.get("pid") == PID_MACHINE:
            record.append(e.get("ts"))
        events.append(record)
    metrics = (trace.get("otherData") or {}).get("metrics") or {}
    counters = {
        name: value
        for name, value in (metrics.get("counters") or {}).items()
        # perf-cache counters split into hits/misses according to how
        # warm the process-global caches already are — class (3)
        # nondeterminism, so they are not part of the golden skeleton.
        if not name.startswith("perf.cache.")
    }
    return {
        "events": events,
        "counters": counters,
    }


def diff_projections(expected: dict, actual: dict,
                     max_reported: int = 10) -> list[str]:
    """Human-readable structural differences (empty list = equal)."""
    problems: list[str] = []
    exp_events = expected.get("events", [])
    act_events = actual.get("events", [])
    if len(exp_events) != len(act_events):
        problems.append(
            f"event count differs: expected {len(exp_events)}, "
            f"got {len(act_events)}"
        )
    for i, (exp, act) in enumerate(zip(exp_events, act_events)):
        if exp != act:
            problems.append(f"event[{i}]: expected {exp!r}, got {act!r}")
            if len(problems) >= max_reported:
                problems.append("... (further differences suppressed)")
                return problems
    exp_counters = expected.get("counters", {})
    act_counters = actual.get("counters", {})
    for name in sorted(set(exp_counters) | set(act_counters)):
        if exp_counters.get(name) != act_counters.get(name):
            problems.append(
                f"counter {name!r}: expected {exp_counters.get(name)}, "
                f"got {act_counters.get(name)}"
            )
    return problems
