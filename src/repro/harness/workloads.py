"""Workload generators.

The paper's evaluation is analytic over abstract (h, t) functions plus
its worked examples; this module provides both:

* the literal figure sources (``fig3_source``, ``fig5_source``,
  ``remq_source``, ...), and
* :func:`make_synthetic` — a recursive list walker with *tunable*
  |H| and |T| (busy-loops before and after the recursive call), the
  knob every analytic experiment sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass


def fig3_source() -> str:
    """Figure 3: the simple recursive list printer (τ_l = cdr⁺)."""
    return """
(defun f3 (l)
  (when l
    (print (car l))
    (f3 (cdr l))))
"""


def fig4_source() -> str:
    """Figure 4: conflict between invocations at distance 1."""
    return """
(defun f4 (l)
  (when l
    (setf (cadr l) (car l))
    (f4 (cdr l))))
"""


def fig5_source() -> str:
    """Figure 5: the running-sum function; A2 ⊙ A3 at distance 1."""
    return """
(defun f5 (l)
  (cond ((null l) nil)
        ((null (cdr l)) (f5 (cdr l)))
        (t (setf (cadr l) (+ (car l) (cadr l)))
           (f5 (cdr l)))))
"""


def fig8_source() -> str:
    """Figure 8's reorderable accumulator, embedded in a recursion."""
    return """
(defun f8 (l)
  (when l
    (setq a (+ a (car l)))
    (f8 (cdr l))))
"""


def remq_source() -> str:
    """Figure 12: remq."""
    return """
(defun remq (obj lst)
  (cond ((null lst) nil)
        ((eq obj (car lst)) (remq obj (cdr lst)))
        (t (cons (car lst) (remq obj (cdr lst))))))
"""


def remq_d_source() -> str:
    """Figure 13: remq-d, the hand-written destination-passing version."""
    return """
(defun remq-d (dest obj lst)
  (cond ((null lst)
         (setf (cdr dest) nil))
        ((eq obj (car lst))
         (remq-d dest obj (cdr lst)))
        (t
         (let ((cell (cons (car lst) nil)))
           (remq-d cell obj (cdr lst))
           (setf (cdr dest) cell)))))
"""


def tree_sum_source() -> str:
    """A two-call-site (tree) recursion over cons trees, for the §4.1
    multiple-call-site experiments."""
    return """
(defun tree-scale (tr)
  (when tr
    (if (consp (car tr))
        (tree-scale (car tr))
        (setf (car tr) (* 2 (car tr))))
    (if (consp (cdr tr))
        (tree-scale (cdr tr)))))
"""


@dataclass
class SyntheticRecursion:
    """A list walker with tunable head and tail work.

    ``head_work`` busy iterations run before the recursive call,
    ``tail_work`` after — so |H| ≈ head_work·c and |T| ≈ tail_work·c in
    interpreter cost units.  ``name`` is the defun'd function.
    """

    name: str
    head_work: int
    tail_work: int
    source: str


def make_synthetic(
    head_work: int, tail_work: int, name: str = "synth", mutate: bool = False
) -> SyntheticRecursion:
    """Build a synthetic (h, t) recursion.

    The head work *produces the recursive argument* (``slow-cdr``), so
    the spawn cannot legally hoist past it — head cost is structural,
    exactly as in the paper's model.  The tail work follows the call.
    ``burn``/``slow-cdr`` are declared pure so the analyzer sees through
    them.

    ``mutate=True`` adds the Figure 5 conflict (a distance-1 write) so
    the lock-concurrency experiments have a conflicting variant.
    """
    conflict = "(setf (cadr l) (+ (car l) 1))" if mutate else ""
    source = f"""
(declaim (pure burn) (pure slow-cdr))
(defun burn (n) (let ((i 0)) (while (< i n) (setq i (1+ i))) i))
(defun slow-cdr (l) (burn {head_work}) (cdr l))
(defun {name} (l)
  (when l
    (let ((nxt (slow-cdr l)))
      {conflict}
      ({name} nxt)
      (burn {tail_work}))))
"""
    return SyntheticRecursion(name, head_work, tail_work, source)


def burn_cost(n: int) -> int:
    """Sequential interpreter cost of ``(burn n)`` — the dynamic unit
    behind ``make_synthetic``'s head/tail knobs (for calibrating the
    analytic model)."""
    from repro.lisp.interpreter import Interpreter
    from repro.lisp.runner import SequentialRunner

    interp = Interpreter()
    runner = SequentialRunner(interp)
    runner.eval_text("(defun burn (n) (let ((i 0)) (while (< i n) (setq i (1+ i))) i))")
    start = runner.time
    runner.eval_text(f"(burn {n})")
    return runner.time - start


def make_int_list(n: int, start: int = 1) -> str:
    """Lisp text building ``(setq data (list start start+1 ...))``."""
    items = " ".join(str(start + i) for i in range(n))
    return f"(setq data (list {items}))"


def make_tree(depth: int) -> str:
    """Lisp text for a complete cons tree of the given depth with integer
    leaves: ``(setq tree ...)``."""

    def build(d: int, counter: list[int]) -> str:
        if d == 0:
            counter[0] += 1
            return str(counter[0])
        left = build(d - 1, counter)
        right = build(d - 1, counter)
        return f"(cons {left} {right})"

    return f"(setq tree {build(depth, [0])})"
