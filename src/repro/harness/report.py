"""Tiny reporting helpers for benchmark output."""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """Render an aligned text table (the benches print these so the
    bench output reads like the paper's tables)."""
    rows = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def shape_check(name: str, condition: bool, detail: str = "") -> str:
    """A pass/fail line for the paper-shape assertions benches print."""
    mark = "PASS" if condition else "FAIL"
    suffix = f" — {detail}" if detail else ""
    return f"[{mark}] {name}{suffix}"
