"""Tiny reporting helpers for benchmark output."""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """Render an aligned text table (the benches print these so the
    bench output reads like the paper's tables)."""
    rows = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def shape_check(name: str, condition: bool, detail: str = "") -> str:
    """A pass/fail line for the paper-shape assertions benches print."""
    mark = "PASS" if condition else "FAIL"
    suffix = f" — {detail}" if detail else ""
    return f"[{mark}] {name}{suffix}"


def format_robustness(report: Any) -> str:
    """Render a :class:`~repro.harness.chaos.RobustnessReport`: one row
    per (workload × fault plan) cell, then the sweep verdict."""
    rows = []
    for o in report.outcomes:
        rows.append([
            o.workload,
            o.plan,
            o.fault_seed,
            "-" if o.sched_seed is None else o.sched_seed,
            o.status,
            o.faults_injected,
            o.races,
            o.recovery_cause or "-",
        ])
    table = format_table(
        ["workload", "plan", "fseed", "sseed", "status",
         "faults", "races", "recovery cause"],
        rows,
    )
    lines = [table, ""]
    lines.append(
        f"{report.runs} run(s): {report.passed} ok, "
        f"{report.recovered} recovered, {report.failed} FAILED; "
        f"{report.total_faults} fault(s) injected, "
        f"{report.total_races} race(s) flagged"
    )
    lines.append(shape_check(
        "no silent wrong answers", report.ok,
        "every run passed sequentializability or recovered sequentially",
    ))
    return "\n".join(lines)
