"""Tiny reporting helpers for benchmark output, plus the JSON form of
the chaos sweep's robustness report (a :mod:`repro.envelope` envelope
of kind ``"robustness"``, written by ``repro chaos --out``)."""

from __future__ import annotations

from typing import Any, Dict, Iterable, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """Render an aligned text table (the benches print these so the
    bench output reads like the paper's tables)."""
    rows = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def shape_check(name: str, condition: bool, detail: str = "") -> str:
    """A pass/fail line for the paper-shape assertions benches print."""
    mark = "PASS" if condition else "FAIL"
    suffix = f" — {detail}" if detail else ""
    return f"[{mark}] {name}{suffix}"


def format_robustness(report: Any) -> str:
    """Render a :class:`~repro.harness.chaos.RobustnessReport`: one row
    per (workload × fault plan) cell, then the sweep verdict."""
    rows = []
    for o in report.outcomes:
        rows.append([
            o.workload,
            o.plan,
            o.fault_seed,
            "-" if o.sched_seed is None else o.sched_seed,
            o.status,
            o.faults_injected,
            o.races,
            o.recovery_cause or "-",
        ])
    table = format_table(
        ["workload", "plan", "fseed", "sseed", "status",
         "faults", "races", "recovery cause"],
        rows,
    )
    lines = [table, ""]
    lines.append(
        f"{report.runs} run(s): {report.passed} ok, "
        f"{report.recovered} recovered, {report.failed} FAILED; "
        f"{report.total_faults} fault(s) injected, "
        f"{report.total_races} race(s) flagged"
    )
    lines.append(shape_check(
        "no silent wrong answers", report.ok,
        "every run passed sequentializability or recovered sequentially",
    ))
    return "\n".join(lines)


def robustness_body(report: Any) -> Dict[str, Any]:
    """The JSON body of a chaos sweep report (deterministic under
    fixed seeds; there is no wall section — every field derives from
    the simulated machine)."""
    return {
        "cells": [
            {
                "workload": o.workload,
                "plan": o.plan,
                "fault_seed": o.fault_seed,
                "sched_seed": o.sched_seed,
                "status": o.status,
                "detail": o.detail,
                "races": o.races,
                "faults_injected": o.faults_injected,
                "recovery_cause": o.recovery_cause,
                "concurrent_time": o.concurrent_time,
                "cross_check_agrees": o.cross_check_agrees,
            }
            for o in report.outcomes
        ],
        "summary": {
            "runs": report.runs,
            "passed": report.passed,
            "recovered": report.recovered,
            "failed": report.failed,
            "total_faults": report.total_faults,
            "total_races": report.total_races,
            "ok": report.ok,
        },
    }


def robustness_envelope(report: Any) -> Dict[str, Any]:
    """The enveloped document ``repro chaos --out`` writes."""
    from repro.envelope import KIND_ROBUSTNESS, wrap

    return wrap(KIND_ROBUSTNESS, robustness_body(report))
