"""Experiment harness: workload generators and run helpers shared by the
benchmarks and the examples."""

from repro.harness.workloads import (
    SyntheticRecursion,
    fig3_source,
    fig5_source,
    make_int_list,
    make_synthetic,
    remq_source,
    tree_sum_source,
)
from repro.harness.runner import (
    ExperimentRun,
    run_concurrent,
    run_sequential,
    run_transformed,
)
from repro.harness.report import format_table, shape_check
from repro.harness.timeline import occupancy_sparkline, process_gantt

__all__ = [
    "ExperimentRun",
    "SyntheticRecursion",
    "fig3_source",
    "fig5_source",
    "format_table",
    "make_int_list",
    "occupancy_sparkline",
    "process_gantt",
    "make_synthetic",
    "remq_source",
    "run_concurrent",
    "run_sequential",
    "run_transformed",
    "shape_check",
    "tree_sum_source",
]
