"""Run helpers: sequential baseline, Curare transform, machine run —
the three-step recipe every experiment repeats."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.declare.registry import DeclarationRegistry
from repro.lisp.interpreter import Interpreter
from repro.lisp.runner import SequentialRunner
from repro.obs.recorder import PID_HARNESS, Recorder
from repro.runtime.clock import CostModel
from repro.runtime.faults import FaultPlan
from repro.runtime.machine import Machine, MachineStats
from repro.runtime.racecheck import RaceDetector
from repro.sexpr.printer import write_str
from repro.transform.pipeline import Curare, CurareResult


@dataclass
class ExperimentRun:
    """One execution's observables."""

    result_text: str
    time: int
    stats: Optional[MachineStats] = None
    curare: Optional[CurareResult] = None
    interp: Optional[Interpreter] = None
    extra: dict = field(default_factory=dict)

    @property
    def mean_concurrency(self) -> float:
        return self.stats.mean_concurrency if self.stats else 1.0


def _record_run(recorder: Recorder, label: str, run: ExperimentRun) -> None:
    """Per-run harness rollup: one event with the numbers every
    experiment reads off a finished run."""
    stats = run.stats
    recorder.count("harness.runs")
    args = {"workload": label, "result": run.result_text,
            "ticks": run.time}
    if stats is not None:
        args.update(
            processes=stats.processes,
            context_switches=stats.context_switches,
            lock_contentions=stats.lock_contentions,
            mean_concurrency=round(stats.mean_concurrency, 4),
            utilization=round(stats.utilization, 4),
        )
    recorder.event("harness.run", "harness", pid=PID_HARNESS, args=args)


def run_sequential(
    program: str, setup: str, call: str, read_back: Optional[str] = None
) -> ExperimentRun:
    """Sequential reference run.  ``call`` and ``read_back`` are Lisp text."""
    interp = Interpreter()
    runner = SequentialRunner(interp)
    runner.eval_text(program)
    runner.eval_text(setup)
    start = runner.time
    value = runner.eval_text(call)
    elapsed = runner.time - start
    shown = runner.eval_text(read_back) if read_back else value
    return ExperimentRun(write_str(shown), elapsed, interp=interp)


def run_transformed(
    program: str,
    fname: str,
    setup: str,
    call: str,
    read_back: Optional[str] = None,
    processors: int = 4,
    cost_model: Optional[CostModel] = None,
    decls: Optional[DeclarationRegistry] = None,
    assume_sapp: bool = True,
    policy: str = "fifo",
    seed: Optional[int] = None,
    transform_kwargs: Optional[dict] = None,
    faults: Optional[FaultPlan] = None,
    race_detector: Optional[RaceDetector] = None,
    lock_wait_timeout: Optional[int] = None,
    recorder: Optional[Recorder] = None,
    rng: Optional[random.Random] = None,
) -> ExperimentRun:
    """Transform ``fname`` with Curare and run ``call`` on the machine.

    ``call`` should reference the transformed name (``<fname>-cc``).
    The robustness hooks (``faults``, ``race_detector``,
    ``lock_wait_timeout``) pass straight through to the machine and are
    echoed in ``extra`` so a failing run is reproducible from its
    report.  ``recorder`` arms the flight recorder across the pipeline,
    the machine, and this harness wrapper.
    """
    interp = Interpreter()
    curare = Curare(
        interp, decls=decls, assume_sapp=assume_sapp, recorder=recorder
    )
    curare.load_program(program)
    curare_result = curare.transform(fname, **(transform_kwargs or {}))
    curare.runner.eval_text(setup)
    machine = Machine(
        interp, processors=processors, cost_model=cost_model,
        policy=policy, seed=seed, rng=rng,
        faults=faults, race_detector=race_detector,
        lock_wait_timeout=lock_wait_timeout,
        recorder=recorder,
    )
    main = machine.spawn_text(call)
    stats = machine.run()
    shown = (
        SequentialRunner(interp).eval_text(read_back) if read_back else main.result
    )
    run = ExperimentRun(
        write_str(shown), stats.total_time, stats=stats,
        curare=curare_result, interp=interp,
    )
    run.extra["seed"] = seed
    run.extra["machine"] = machine
    if recorder is not None:
        run.extra["recorder"] = recorder
        _record_run(recorder, fname, run)
    if faults is not None:
        run.extra["faults"] = faults
        run.extra["fault_seed"] = getattr(faults, "seed", None)
    if race_detector is not None:
        run.extra["race_detector"] = race_detector
    return run


def run_with_recovery(
    program: str,
    fname: str,
    setup: str,
    call: str,
    read_back: Optional[str] = None,
    processors: int = 4,
    faults: Optional[FaultPlan] = None,
    sched_seed: Optional[int] = None,
    lock_wait_timeout: int = 100_000,
    compare: str = "value",
):
    """Transform and run under the full trust-but-verify runtime.

    ``call`` contains ``{fn}`` (it is formatted with the original or
    transformed name as appropriate).  The concurrent run is armed with
    fault injection (if ``faults``), the online race detector, and the
    lock-wait watchdog; any abort or sequentializability failure falls
    back to sequential re-execution of the original program.  Returns a
    :class:`~repro.harness.chaos.ChaosOutcome`.
    """
    from repro.harness.chaos import ChaosWorkload, run_chaos_case
    from repro.runtime.faults import NullFaultPlan

    workload = ChaosWorkload(
        name=fname, program=program, fname=fname, setup=setup,
        call=call, read_back=read_back, compare=compare,
    )
    return run_chaos_case(
        workload,
        faults if faults is not None else NullFaultPlan(),
        processors=processors,
        sched_seed=sched_seed,
        lock_wait_timeout=lock_wait_timeout,
    )


def run_concurrent(
    program: str,
    setup: str,
    call: str,
    read_back: Optional[str] = None,
    processors: int = 4,
    cost_model: Optional[CostModel] = None,
    policy: str = "fifo",
    seed: Optional[int] = None,
    faults: Optional[FaultPlan] = None,
    race_detector: Optional[RaceDetector] = None,
    lock_wait_timeout: Optional[int] = None,
    recorder: Optional[Recorder] = None,
    rng: Optional[random.Random] = None,
) -> ExperimentRun:
    """Run an (already concurrent) program directly on the machine."""
    interp = Interpreter()
    runner = SequentialRunner(interp)
    runner.eval_text(program)
    runner.eval_text(setup)
    machine = Machine(
        interp, processors=processors, cost_model=cost_model,
        policy=policy, seed=seed, rng=rng,
        faults=faults, race_detector=race_detector,
        lock_wait_timeout=lock_wait_timeout,
        recorder=recorder,
    )
    main = machine.spawn_text(call)
    stats = machine.run()
    shown = SequentialRunner(interp).eval_text(read_back) if read_back else main.result
    run = ExperimentRun(
        write_str(shown), stats.total_time, stats=stats, interp=interp
    )
    run.extra["machine"] = machine
    if recorder is not None:
        run.extra["recorder"] = recorder
        _record_run(recorder, "concurrent", run)
    return run
