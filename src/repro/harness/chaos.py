"""Chaos harness: attack every paper workload, verify or recover.

The trust-but-verify loop, end to end:

1. run the *original* program sequentially — the oracle;
2. transform it with Curare and run it on a machine armed with a seeded
   :class:`~repro.runtime.faults.FaultPlan`, the online
   :class:`~repro.runtime.racecheck.RaceDetector`, and the lock-wait
   watchdog;
3. if the run completes, check final-state sequentializability against
   the oracle (and cross-validate the detector against the post-hoc
   conflict-order checker);
4. if the run aborts (race flagged, deadlock, watchdog, machine
   timeout) **or** the check fails, degrade gracefully: re-execute the
   original program sequentially in a fresh world and verify *that*
   matches the oracle.

The contract the sweep asserts: **zero silent wrong answers**.  Every
(workload × fault plan) cell either passes the sequentializability
check or records a recovery that re-executed sequentially and passed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.harness.workloads import (
    fig3_source,
    fig5_source,
    make_int_list,
    make_tree,
    remq_source,
    tree_sum_source,
)
from repro.lisp.errors import LispError
from repro.lisp.interpreter import Interpreter
from repro.lisp.runner import SequentialRunner
from repro.obs.recorder import PID_HARNESS, Recorder
from repro.runtime.faults import FaultPlan, fault_matrix
from repro.runtime.machine import Machine, MachineError
from repro.runtime.racecheck import RaceDetected, RaceDetector, cross_validate
from repro.sexpr.printer import write_str
from repro.transform.pipeline import Curare, rewrite_fallback_call


@dataclass(frozen=True)
class ChaosWorkload:
    """One paper workload in chaos-sweep form.

    ``call`` contains ``{fn}``, formatted with the original name for
    the oracle run and the transformed name for the machine run.
    ``compare='output-set'`` compares the multiset of printed outputs
    instead of a read-back value (for print-only workloads like Figure
    3, where output *order* is legitimately unordered across
    processes).
    """

    name: str
    program: str
    fname: str
    setup: str
    call: str
    read_back: Optional[str] = None
    compare: str = "value"  # "value" | "output-set"
    head_ordered: bool = True  # sequential conflict order == invocation order


def paper_workloads(n: int = 8) -> list[ChaosWorkload]:
    """The paper's worked examples, sized for a fast sweep."""
    return [
        ChaosWorkload(
            name="fig3-print",
            program=fig3_source(),
            fname="f3",
            setup=make_int_list(n),
            call="({fn} data)",
            compare="output-set",
        ),
        ChaosWorkload(
            # Figure 4's shifter, with the last-cell guard the paper
            # elides (the bare figure crashes on ``(cadr l)`` of a
            # one-element list); the distance-1 conflict is unchanged.
            name="fig4-shift",
            program="(defun f4 (l)\n"
                    "  (when (cdr l)\n"
                    "    (setf (cadr l) (car l))\n"
                    "    (f4 (cdr l))))",
            fname="f4",
            setup=make_int_list(n),
            call="({fn} data)",
            read_back="(identity data)",
        ),
        ChaosWorkload(
            name="fig5-prefix-sum",
            program=fig5_source(),
            fname="f5",
            setup=make_int_list(n),
            call="({fn} data)",
            read_back="(identity data)",
        ),
        ChaosWorkload(
            name="fig8-accumulate",
            program="(declaim (reorderable +))\n"
                    "(defun f8 (l)\n"
                    "  (when l\n"
                    "    (setq a (+ a (car l)))\n"
                    "    (f8 (cdr l))))",
            fname="f8",
            setup=f"(setq a 0) {make_int_list(n)}",
            call="({fn} data)",
            read_back="(identity a)",
        ),
        ChaosWorkload(
            name="remq-rebuild",
            program=remq_source(),
            fname="remq",
            setup=make_int_list(n),
            call="({fn} 3 data)",
            head_ordered=False,  # DPS tail stores commit deepest-first
        ),
        ChaosWorkload(
            name="tree-scale",
            program=tree_sum_source(),
            fname="tree-scale",
            setup=make_tree(3),
            call="({fn} tree)",
            read_back="(identity tree)",
        ),
    ]


def misdeclared_workload(n: int = 6) -> ChaosWorkload:
    """A workload whose declaration *lies*: the ``unordered-writes``
    claim dismisses a real distance-1 write-write conflict, Curare
    inserts no lock, and the tail writes of adjacent invocations race.
    The sequential answer is ``(0 1 1 ... 1)``; the unsynchronized
    concurrent runs converge on ``(0 0 ... 0)`` — a silent wrong answer
    unless the race detector catches it."""
    return ChaosWorkload(
        name="wipe-misdeclared",
        program="(declaim (unordered-writes setf))\n"
                "(defun wipe (l)\n"
                "  (when l\n"
                "    (wipe (cdr l))\n"
                "    (setf (car l) 0)\n"
                "    (when (cdr l) (setf (cadr l) 1))))",
        fname="wipe",
        setup=make_int_list(n, start=9),
        call="({fn} data)",
        read_back="(identity data)",
        head_ordered=False,
    )


@dataclass
class ChaosOutcome:
    """One (workload × plan) cell of the sweep."""

    workload: str
    plan: str
    fault_seed: int
    sched_seed: Optional[int]
    status: str = "ok"  # ok | recovered | FAILED
    detail: str = ""
    races: int = 0
    faults_injected: int = 0
    recovery_cause: str = ""
    concurrent_time: int = 0
    cross_check_agrees: Optional[bool] = None

    @property
    def silent_wrong_answer(self) -> bool:
        return self.status == "FAILED"


@dataclass
class RobustnessReport:
    """Aggregate of a chaos sweep — what ``repro chaos`` prints."""

    outcomes: list[ChaosOutcome] = field(default_factory=list)

    @property
    def runs(self) -> int:
        return len(self.outcomes)

    @property
    def passed(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "ok")

    @property
    def recovered(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "recovered")

    @property
    def failed(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "FAILED")

    @property
    def total_faults(self) -> int:
        return sum(o.faults_injected for o in self.outcomes)

    @property
    def total_races(self) -> int:
        return sum(o.races for o in self.outcomes)

    @property
    def ok(self) -> bool:
        """The sweep contract: no silent wrong answers."""
        return self.failed == 0

    def __bool__(self) -> bool:
        return self.ok


def _sequential_oracle(workload: ChaosWorkload) -> tuple[str, list]:
    """Run the original program sequentially; return (shown, outputs)."""
    interp = Interpreter()
    runner = SequentialRunner(interp)
    runner.eval_text(workload.program)
    runner.eval_text(workload.setup)
    value = runner.eval_text(workload.call.format(fn=workload.fname))
    shown = (
        runner.eval_text(workload.read_back) if workload.read_back else value
    )
    return write_str(shown), list(runner.outputs)


def _compare(workload: ChaosWorkload, oracle: tuple[str, list],
             shown: str, outputs: list) -> bool:
    if workload.compare == "output-set":
        return sorted(map(write_str, outputs)) == sorted(map(write_str, oracle[1]))
    return shown == oracle[0]


def run_chaos_case(
    workload: ChaosWorkload,
    plan: FaultPlan,
    processors: int = 4,
    sched_seed: Optional[int] = None,
    lock_wait_timeout: int = 100_000,
    max_time: int = 2_000_000,
    oracle: Optional[tuple[str, list]] = None,
    recorder: Optional[Recorder] = None,
) -> ChaosOutcome:
    """One cell: transformed run under ``plan``, verify or recover."""
    if oracle is None:
        oracle = _sequential_oracle(workload)
    outcome = ChaosOutcome(
        workload=workload.name,
        plan=plan.name,
        fault_seed=getattr(plan, "seed", 0),
        sched_seed=sched_seed,
    )
    detector = RaceDetector(raise_on_race=True)
    interp = Interpreter()
    curare = Curare(interp, assume_sapp=True, recorder=recorder)
    failure: Optional[str] = None
    machine: Optional[Machine] = None
    try:
        curare.load_program(workload.program)
        result = curare.transform(workload.fname)
        if not result.transformed:
            raise LispError(f"transform refused: {result.reason}")
        curare.runner.eval_text(workload.setup)
        # Scheduling randomness comes from this explicit stream, never
        # the process-global `random` state (which fault plans and user
        # code may touch): equal sched_seed ⇒ equal schedule, always.
        machine = Machine(
            interp,
            processors=processors,
            policy="random" if sched_seed is not None else "fifo",
            seed=sched_seed,
            rng=(random.Random(sched_seed)
                 if sched_seed is not None else None),
            faults=plan,
            race_detector=detector,
            lock_wait_timeout=lock_wait_timeout,
            max_time=max_time,
            recorder=recorder,
        )
        main = machine.spawn_text(
            workload.call.format(fn=result.transformed_name)
        )
        stats = machine.run()
        outcome.concurrent_time = stats.total_time
        shown = (
            write_str(SequentialRunner(interp).eval_text(workload.read_back))
            if workload.read_back
            else write_str(main.result)
        )
        if not _compare(workload, oracle, shown, machine.outputs):
            failure = f"sequentializability violated: {shown} != {oracle[0]}"
        elif workload.head_ordered:
            validation = cross_validate(detector, machine.trace)
            outcome.cross_check_agrees = validation.agree
    except RaceDetected as err:
        failure = f"race: {err.race}"
    except MachineError as err:
        failure = f"{type(err).__name__} at t={err.clock}"
    except LispError as err:
        failure = f"error: {err}"
    outcome.races = detector.race_count
    outcome.faults_injected = plan.total_injected
    if failure is None:
        outcome.status = "ok"
        return outcome
    # Graceful degradation: abort the concurrent world entirely and
    # re-execute the original program sequentially in a fresh one.
    outcome.recovery_cause = failure
    fallback_call = rewrite_fallback_call(
        workload.call.format(fn=workload.fname + "-cc"),
        curare.transformed_map or {workload.fname + "-cc": workload.fname},
    )
    try:
        interp2 = Interpreter()
        runner2 = SequentialRunner(interp2)
        runner2.eval_text(workload.program)
        runner2.eval_text(workload.setup)
        value = runner2.eval_text(fallback_call)
        shown = (
            write_str(runner2.eval_text(workload.read_back))
            if workload.read_back
            else write_str(value)
        )
        if _compare(workload, oracle, shown, list(runner2.outputs)):
            outcome.status = "recovered"
            outcome.detail = failure
        else:
            outcome.status = "FAILED"
            outcome.detail = (
                f"{failure}; sequential fallback ALSO diverged: {shown}"
            )
    except LispError as err:
        outcome.status = "FAILED"
        outcome.detail = f"{failure}; sequential fallback died: {err}"
    return outcome


def _record_cell(recorder: Recorder, outcome: ChaosOutcome) -> None:
    """Per-cell rollup for the sweep trace."""
    recorder.count("chaos.cells")
    recorder.count(f"chaos.{outcome.status.lower()}")
    recorder.count("chaos.faults_injected", outcome.faults_injected)
    recorder.count("chaos.races", outcome.races)
    recorder.event(
        "chaos.cell", "harness", pid=PID_HARNESS,
        args={
            "workload": outcome.workload,
            "plan": outcome.plan,
            "status": outcome.status,
            "races": outcome.races,
            "faults_injected": outcome.faults_injected,
            "recovery_cause": outcome.recovery_cause,
        },
    )


def chaos_sweep(
    workloads: Optional[list[ChaosWorkload]] = None,
    seed: int = 0,
    plans: Optional[list[FaultPlan]] = None,
    processors: int = 4,
    sched_seed: Optional[int] = None,
    lock_wait_timeout: int = 100_000,
    recorder: Optional[Recorder] = None,
) -> RobustnessReport:
    """Every workload × every fault plan.  Fresh plans per workload so
    budgets and RNG streams never leak across cells."""
    if workloads is None:
        workloads = paper_workloads()
    report = RobustnessReport()
    for workload in workloads:
        oracle = _sequential_oracle(workload)
        cell_plans = plans if plans is not None else fault_matrix(seed)
        for plan in cell_plans:
            if plans is not None:
                # Caller-supplied plans are stateful; re-derive a fresh
                # instance per cell when possible.
                plan = _fresh_plan(plan)
            outcome = run_chaos_case(
                workload, plan, processors=processors,
                sched_seed=sched_seed,
                lock_wait_timeout=lock_wait_timeout, oracle=oracle,
                recorder=recorder,
            )
            if recorder is not None:
                _record_cell(recorder, outcome)
            report.outcomes.append(outcome)
    if recorder is not None:
        recorder.event(
            "chaos.sweep", "harness", pid=PID_HARNESS,
            args={
                "runs": report.runs,
                "passed": report.passed,
                "recovered": report.recovered,
                "failed": report.failed,
                "total_faults": report.total_faults,
                "total_races": report.total_races,
            },
        )
    return report


def _fresh_plan(plan: FaultPlan) -> FaultPlan:
    from repro.runtime.faults import NullFaultPlan, SeededFaultPlan

    if isinstance(plan, SeededFaultPlan):
        return SeededFaultPlan(plan.seed, plan.rates, name=plan.name)
    if isinstance(plan, NullFaultPlan):
        return NullFaultPlan()
    return plan
