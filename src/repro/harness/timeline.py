"""ASCII timelines: the visual half of Figures 6 and 7.

The machine samples how many processors are busy at every tick
(``stats.concurrency_samples``) and the trace records per-process
spawn/finish times; this module renders both as text — an occupancy
sparkline and a per-process Gantt chart — so examples and bench results
can *show* the overlap the CRI model creates, the way the paper's
figures do.
"""

from __future__ import annotations

from typing import Optional

from repro.runtime.machine import Machine, MachineStats

_BLOCKS = " ▁▂▃▄▅▆▇█"


def occupancy_sparkline(
    stats: MachineStats, width: int = 72, processors: Optional[int] = None
) -> str:
    """Busy-processor count over time, downsampled to ``width`` columns."""
    samples = stats.concurrency_samples
    if not samples:
        return "(no samples)"
    peak = processors if processors is not None else max(samples) or 1
    if len(samples) <= width:
        buckets = [float(s) for s in samples]
    else:
        buckets = []
        step = len(samples) / width
        for col in range(width):
            lo = int(col * step)
            hi = max(lo + 1, int((col + 1) * step))
            window = samples[lo:hi]
            buckets.append(sum(window) / len(window))
    line = "".join(
        _BLOCKS[min(len(_BLOCKS) - 1, round(v / peak * (len(_BLOCKS) - 1)))]
        for v in buckets
    )
    return (
        f"busy processors (peak {peak}, mean "
        f"{stats.mean_concurrency:.2f}) over {stats.total_time} steps:\n{line}"
    )


def process_gantt(machine: Machine, width: int = 72, max_rows: int = 24) -> str:
    """One row per process: ░ created-but-waiting, █ lifetime span.

    Rows are in spawn order — for CRI executions this is invocation
    order, so the picture is exactly Figure 7's staircase of overlapping
    invocations.
    """
    total = max(machine.time, 1)
    rows = []
    processes = sorted(machine.processes.values(), key=lambda p: p.proc_id)
    clipped = len(processes) > max_rows
    for proc in processes[:max_rows]:
        start = proc.spawn_time
        end = proc.finish_time if proc.state == "done" else machine.time
        col0 = int(start / total * (width - 1))
        col1 = max(col0 + 1, int(end / total * (width - 1)) + 1)
        bar = " " * col0 + "█" * (col1 - col0)
        label = (proc.label or f"p{proc.proc_id}")[:12].ljust(12)
        rows.append(f"{proc.proc_id:>3} {label} |{bar.ljust(width)}|")
    header = f"    {'process'.ljust(12)} |{'time →'.ljust(width)}|"
    out = [header] + rows
    if clipped:
        out.append(f"    … {len(processes) - max_rows} more process(es)")
    return "\n".join(out)
