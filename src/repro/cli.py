"""Command-line interface: ``python -m repro <command> ...``.

Every engine-touching command is a thin shell around the stable
:mod:`repro.api` facade — the CLI parses flags, calls ``api.analyze`` /
``api.transform`` / ``api.run`` / ``api.sweep``, renders the returned
result, and maps :class:`repro.api.ApiError` codes onto exit codes.
The ``repro serve`` service hosts the *same* facade, which is what
makes CLI output and served responses byte-comparable (the parity
tests hold both to it).

Commands:

* ``analyze FILE -f NAME``    — run the §2/§3 analysis, print the
  feedback report (conflicts, distances, suggested declarations).
* ``transform FILE -f NAME``  — restructure one function and print the
  transformed source (plus wrapper forms).
* ``run FILE -e EXPR``        — evaluate the program and an expression
  on the simulated machine; prints the value and machine statistics.
* ``serve``                   — host the facade as a long-lived
  concurrent NDJSON socket service (see :mod:`repro.serve`);
  ``--executor process`` runs engine calls in a respawning
  worker-process farm with crash isolation.
* ``cache-serve``             — host the fleet-shared result cache
  (stage-fingerprint keys, integrity-verified entries) that sweep
  workers, ``serve`` shards (``--cache-server``) and the router share
  (see :mod:`repro.serve.cacheserver`).
* ``route``                   — shard-route NDJSON requests across a
  fleet of ``serve`` backends with health probes, retries, circuit
  breakers, single-flight request coalescing, graceful drain,
  automatic rejoin of recovered drained backends, and sequential
  fallback (see :mod:`repro.fleet`).
* ``chaos``                   — sweep the paper workloads across the
  seeded fault matrix and assert sequentializability survives every
  plan (exit 1 on any silent wrong answer); ``--out`` writes the
  robustness report as a versioned envelope; ``--fleet`` attacks a
  real router-over-backends fleet (seeded blackholes, slow sends, a
  mid-run ``kill -9``) instead of the simulated machine.
* ``trace WORKLOAD``          — run a named paper workload with the
  flight recorder armed end to end and export the trace
  (``--trace-out``, Chrome ``trace_event`` or JSONL format).
* ``bench``                   — run the pinned perf suite (baseline vs
  optimized mode, median-of-N), write the enveloped report, and with
  ``--compare BASELINE.json --max-regress PCT`` gate on regressions
  (exit 1 when any case regresses beyond the threshold).
* ``sweep``                   — run a parameter-sweep grid (fig06/
  fig07/fig10 families + analytic-model validation + analyze-only
  distance jobs) across ``--workers`` OS processes through the
  persistent result cache (optionally layered over a shared
  ``--cache-server``), writing one enveloped JSON report; exit 1 on
  failed points or (with ``--min-hit-rate``) on a cold cache.

``analyze``, ``transform``, and ``run`` take ``--json`` to print the
facade result's deterministic JSON instead of the human rendering.
``run``, ``chaos``, ``sweep``, ``serve``, ``route``, and ``trace``
all take
``--profile`` (print phase timings and counters) and ``--trace-out
PATH`` (write the recorded trace; ``--trace-format`` picks the
encoding).  Exit code 2 flags a usage error: unknown
workload/plan/grid, an unreadable input, or an unwritable output path.
Running ``repro`` with no subcommand prints help and exits 2.

Every file-taking command reads ``(declaim ...)`` forms from the file.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional

from repro import api


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Curare: restructure Lisp programs for concurrent execution",
    )
    sub = parser.add_subparsers(dest="command")

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("file", help="Lisp source file (with declaim forms)")
    common.add_argument(
        "--assume-sapp", action="store_true",
        help="treat every parameter as SAPP-declared (experiment mode)",
    )
    common.add_argument(
        "--json", action="store_true",
        help="print the facade result as deterministic JSON",
    )

    obs_common = argparse.ArgumentParser(add_help=False)
    obs_common.add_argument(
        "--profile", action="store_true",
        help="record the run and print phase timings + counters",
    )
    obs_common.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write the recorded trace to this file",
    )
    obs_common.add_argument(
        "--trace-format", choices=["chrome", "jsonl"], default="chrome",
        help="trace encoding: Chrome trace_event JSON (default, loads "
             "in Perfetto/about://tracing) or JSON lines",
    )

    p_analyze = sub.add_parser(
        "analyze", parents=[common], help="report conflicts for a function"
    )
    p_analyze.add_argument("-f", "--function", required=True)

    p_transform = sub.add_parser(
        "transform", parents=[common], help="restructure a function"
    )
    p_transform.add_argument("-f", "--function", required=True)
    p_transform.add_argument(
        "--mode", choices=["spawn", "enqueue"], default="spawn"
    )
    p_transform.add_argument("--suffix", default="-cc")
    p_transform.add_argument("--early-release", action="store_true")
    p_transform.add_argument("--use-delay", action="store_true")
    p_transform.add_argument(
        "--no-dps", action="store_true",
        help="use futures instead of destination-passing for stored calls",
    )
    p_transform.add_argument(
        "--whole-program", action="store_true",
        help="transform every eligible function and retarget callers",
    )

    p_run = sub.add_parser(
        "run", parents=[common, obs_common],
        help="evaluate an expression on the simulated machine",
    )
    p_run.add_argument("-e", "--expr", required=True)
    p_run.add_argument("-p", "--processors", type=int, default=4)
    p_run.add_argument(
        "--transform", metavar="NAME", action="append", default=[],
        help="transform these functions first (repeatable)",
    )
    p_run.add_argument("--free-sync", action="store_true",
                       help="zero all synchronization costs")
    p_run.add_argument("--seed", type=int, default=None,
                       help="random scheduling with this seed; also seeds "
                            "--faults and is echoed in the report")
    p_run.add_argument("--faults", metavar="PLAN", default=None,
                       help="inject faults from this plan of the fault "
                            "matrix (e.g. 'mixed'), seeded by --seed")
    p_run.add_argument("--race-check", action="store_true",
                       help="run the online vector-clock race detector")
    p_run.add_argument("--lock-wait-timeout", type=int, default=None,
                       help="abort if any process waits on a lock this long")
    p_run.add_argument("--timeline", action="store_true",
                       help="print the occupancy sparkline and process gantt")
    p_run.add_argument("--eval-mode", choices=["interpreter", "compiled"],
                       default=None,
                       help="Lisp evaluation strategy (default: compiled "
                            "when the perf layer is on; both emit "
                            "identical effect streams)")

    p_serve = sub.add_parser(
        "serve", parents=[obs_common],
        help="host the analysis facade as a concurrent NDJSON service",
    )
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default: 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=0,
                         help="bind port (default: 0 = ephemeral; the "
                              "bound port is printed on startup)")
    p_serve.add_argument("--workers", type=int, default=4,
                         help="worker threads executing engine requests "
                              "(default: 4)")
    p_serve.add_argument("--backlog", type=int, default=16,
                         help="admission queue beyond the workers; further "
                              "requests are rejected with 'overloaded' "
                              "(default: 16)")
    p_serve.add_argument("--deadline-ms", type=float, default=30_000.0,
                         help="default per-request deadline when the "
                              "request carries none (default: 30000)")
    p_serve.add_argument("--drain-timeout", type=float, default=30.0,
                         metavar="SEC",
                         help="max seconds to wait for in-flight work on "
                              "shutdown (default: 30)")
    p_serve.add_argument("--executor", choices=["thread", "process"],
                         default="thread",
                         help="where engine calls run: 'thread' (in the "
                              "pool thread; default) or 'process' (a "
                              "respawning worker-process farm with crash "
                              "isolation and real cancellation)")
    p_serve.add_argument("--chaos-seed", type=int, default=None,
                         help="inject seeded request faults (rejections + "
                              "delays) in front of real work")
    p_serve.add_argument("--chaos-budget", type=int, default=64,
                         help="max chaos faults injected (default: 64)")
    p_serve.add_argument("--cache-server", metavar="HOST:PORT", default=None,
                         help="fleet-shared result cache ('repro "
                              "cache-serve'); engine results are read from "
                              "and published to it")

    p_route = sub.add_parser(
        "route", parents=[obs_common],
        help="shard-route requests across a fleet of serve backends",
    )
    p_route.add_argument("--host", default="127.0.0.1",
                         help="bind address (default: 127.0.0.1)")
    p_route.add_argument("--port", type=int, default=0,
                         help="bind port (default: 0 = ephemeral)")
    p_route.add_argument("--backend", metavar="HOST:PORT", action="append",
                         default=[], required=True,
                         help="a serve backend to route to (repeatable)")
    p_route.add_argument("--vnodes", type=int, default=64,
                         help="virtual nodes per backend on the hash ring "
                              "(default: 64)")
    p_route.add_argument("--attempts", type=int, default=3,
                         help="max tries per request across backends "
                              "(default: 3)")
    p_route.add_argument("--connect-timeout", type=float, default=1.0,
                         metavar="SEC",
                         help="per-backend connect timeout (default: 1)")
    p_route.add_argument("--request-timeout", type=float, default=30.0,
                         metavar="SEC",
                         help="per-attempt response timeout (default: 30)")
    p_route.add_argument("--deadline-ms", type=float, default=30_000.0,
                         help="default per-request deadline when the "
                              "request carries none (default: 30000)")
    p_route.add_argument("--seed", type=int, default=0,
                         help="retry-jitter RNG seed (default: 0)")
    p_route.add_argument("--cache-size", type=int, default=256,
                         help="router result-cache entries; 0 disables "
                              "(default: 256)")
    p_route.add_argument("--no-fallback", action="store_true",
                         help="answer 'unavailable' instead of sequential "
                              "in-process fallback when every backend "
                              "is down")
    p_route.add_argument("--drain-timeout", type=float, default=30.0,
                         metavar="SEC",
                         help="max seconds to wait for in-flight work on "
                              "shutdown (default: 30)")
    p_route.add_argument("--chaos-seed", type=int, default=None,
                         help="inject seeded fleet faults (backend "
                              "blackholes + slow sends) into routing")
    p_route.add_argument("--chaos-budget", type=int, default=64,
                         help="max chaos faults injected (default: 64)")
    p_route.add_argument("--cache-server", metavar="HOST:PORT", default=None,
                         help="fleet-shared result cache consulted before "
                              "routing to a backend")
    p_route.add_argument("--no-auto-rejoin", action="store_true",
                         help="do not re-add bled backends that are probed "
                              "down and then healthy again")

    p_cache_serve = sub.add_parser(
        "cache-serve", parents=[obs_common],
        help="host the fleet-shared result cache as an NDJSON service",
    )
    p_cache_serve.add_argument("--host", default="127.0.0.1",
                               help="bind address (default: 127.0.0.1)")
    p_cache_serve.add_argument("--port", type=int, default=0,
                               help="bind port (default: 0 = ephemeral; "
                                    "the bound port is printed on startup)")
    p_cache_serve.add_argument("--root", metavar="DIR",
                               default=".repro-cache",
                               help="backing cache directory "
                                    "(default: .repro-cache)")
    p_cache_serve.add_argument("--drain-timeout", type=float, default=30.0,
                               metavar="SEC",
                               help="max seconds to wait for in-flight "
                                    "work on shutdown (default: 30)")

    p_chaos = sub.add_parser(
        "chaos", parents=[obs_common],
        help="sweep paper workloads across the seeded fault matrix",
    )
    p_chaos.add_argument("--seed", type=int, default=0,
                         help="fault-matrix seed (plans derive from it)")
    p_chaos.add_argument("--sched-seed", type=int, default=None,
                         help="random scheduling with this seed "
                              "(default: deterministic fifo)")
    p_chaos.add_argument("-p", "--processors", type=int, default=4)
    p_chaos.add_argument("--budget", type=int, default=200,
                         help="max faults injected per plan")
    p_chaos.add_argument("--plans", metavar="NAME", action="append",
                         default=[],
                         help="restrict to these fault plans (repeatable)")
    p_chaos.add_argument("--size", type=int, default=8,
                         help="workload size (list length)")
    p_chaos.add_argument("--misdeclared", action="store_true",
                         help="also attack the intentionally mis-declared "
                              "workload (must recover, not fail)")
    p_chaos.add_argument("--out", metavar="PATH", default=None,
                         help="write the robustness report as a versioned "
                              "JSON envelope")
    p_chaos.add_argument("--fleet", action="store_true",
                         help="attack the serve fleet instead of the "
                              "simulated machine: spawn real backends "
                              "behind a shard router, inject seeded "
                              "routing faults (blackhole/slow) and one "
                              "kill -9, and assert every client request "
                              "still gets a correct typed answer")
    p_chaos.add_argument("--fleet-backends", type=int, default=3,
                         help="fleet mode: backend processes (default: 3)")
    p_chaos.add_argument("--fleet-requests", type=int, default=24,
                         help="fleet mode: distinct client requests "
                              "(default: 24)")
    p_chaos.add_argument("--fleet-no-kill", action="store_true",
                         help="fleet mode: skip the mid-run kill -9")

    p_bench = sub.add_parser(
        "bench",
        help="run the pinned perf suite and optionally gate on a baseline",
    )
    p_bench.add_argument("--out", metavar="PATH", default="BENCH_perf.json",
                         help="write the JSON report here "
                              "(default: BENCH_perf.json)")
    p_bench.add_argument("--compare", metavar="BASELINE", default=None,
                         help="compare against this baseline report and "
                              "exit 1 on regression")
    p_bench.add_argument("--max-regress", type=float, default=30.0,
                         metavar="PCT",
                         help="allowed regression in normalized time, "
                              "percent (default: 30)")
    p_bench.add_argument("--min-speedup", type=float, default=None,
                         metavar="FLOOR",
                         help="per-case speedup floor: exit 1 if any "
                              "case's baseline/optimized ratio falls "
                              "below FLOOR (no baseline file needed)")
    p_bench.add_argument("--markdown", metavar="PATH", default=None,
                         help="append a per-case markdown table to PATH "
                              "(default: $GITHUB_STEP_SUMMARY when set)")
    p_bench.add_argument("--repeats", type=int, default=5,
                         help="iterations per case per mode; the minimum "
                              "is reported (default: 5)")
    p_bench.add_argument("--cases", metavar="NAME", action="append",
                         default=[],
                         help="restrict to these cases (repeatable)")

    p_sweep = sub.add_parser(
        "sweep", parents=[obs_common],
        help="run a sharded parameter sweep through the result cache",
    )
    p_sweep.add_argument("--grid", default="smoke",
                         help="grid name (see --list; default: smoke)")
    p_sweep.add_argument("--list", action="store_true",
                         help="list the available grids and exit")
    p_sweep.add_argument("--workers", type=int, default=1,
                         help="worker processes (0 = run inline in this "
                              "process; default: 1)")
    p_sweep.add_argument("--out", metavar="PATH", default=None,
                         help="write the JSON report here "
                              "(default: sweep-<grid>.json)")
    p_sweep.add_argument("--cache-dir", metavar="DIR",
                         default=".repro-cache",
                         help="persistent result-cache directory "
                              "(default: .repro-cache)")
    p_sweep.add_argument("--no-cache", action="store_true",
                         help="bypass the result cache entirely (both the "
                              "local directory and any --cache-server)")
    p_sweep.add_argument("--cache-server", metavar="HOST:PORT", default=None,
                         help="fleet-shared result cache ('repro "
                              "cache-serve') layered over --cache-dir")
    p_sweep.add_argument("--job-timeout", type=float, default=300.0,
                         metavar="SEC",
                         help="per-job deadline in seconds; an overdue "
                              "job's worker is terminated and respawned "
                              "(default: 300)")
    p_sweep.add_argument("--min-hit-rate", type=float, default=None,
                         metavar="PCT",
                         help="fail (exit 1) when the cache hit rate is "
                              "below this percentage — the warm-cache CI "
                              "assertion")

    p_trace = sub.add_parser(
        "trace", parents=[obs_common],
        help="flight-record a named paper workload",
    )
    p_trace.add_argument(
        "workload", nargs="?", default=None,
        help="workload name (see --list), e.g. fig07",
    )
    p_trace.add_argument("--list", action="store_true",
                         help="list the available workloads and exit")
    p_trace.add_argument("-p", "--processors", type=int, default=None,
                         help="override the workload's processor count")
    p_trace.add_argument("--seed", type=int, default=None,
                         help="random scheduling with this seed "
                              "(default: deterministic fifo)")

    return parser


def _read_source(path: str) -> Optional[str]:
    try:
        with open(path, encoding="utf-8") as handle:
            return handle.read()
    except OSError as err:
        print(f";; cannot read {path!r}: {err}", file=sys.stderr)
        return None


def _api_error(err: api.ApiError) -> int:
    """Map a facade error onto a one-line diagnostic and an exit code:
    caller mistakes are usage errors (2), engine refusals/failures are
    run failures (1)."""
    print(f";; {err}", file=sys.stderr)
    return 2 if err.code == "bad_request" else 1


def _make_recorder(args: argparse.Namespace):
    """One recorder when any observability flag asks for it, else None
    (the machine's pay-for-what-you-use guarantee hinges on None)."""
    if getattr(args, "profile", False) or getattr(args, "trace_out", None):
        from repro.obs import Recorder

        return Recorder()
    return None


def _finish_observability(recorder, args: argparse.Namespace) -> int:
    """Print the profile and/or write the trace file; returns an exit
    code (0, or 2 on an unwritable path)."""
    if recorder is None:
        return 0
    if args.profile:
        from repro.obs import render_profile

        print(render_profile(recorder))
    if args.trace_out:
        from repro.obs import write_chrome_trace, write_jsonl

        writer = (
            write_jsonl if args.trace_format == "jsonl" else write_chrome_trace
        )
        try:
            writer(recorder, args.trace_out)
        except OSError as err:
            print(f";; cannot write trace to {args.trace_out!r}: {err}",
                  file=sys.stderr)
            return 2
        print(f";; trace ({args.trace_format}): {args.trace_out} "
              f"[{len(recorder.events)} event(s)]")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    source = _read_source(args.file)
    if source is None:
        return 2
    try:
        result = api.analyze(source, args.function,
                             assume_sapp=args.assume_sapp)
    except api.ApiError as err:
        return _api_error(err)
    print(result.to_json(indent=2) if args.json else result.text, end=""
          if args.json else "\n")
    return 0


def cmd_transform(args: argparse.Namespace) -> int:
    source = _read_source(args.file)
    if source is None:
        return 2
    options = api.TransformOptions(
        mode=args.mode,
        suffix=args.suffix,
        early_release=args.early_release,
        use_delay=args.use_delay,
        prefer_dps=not args.no_dps,
        whole_program=args.whole_program,
        assume_sapp=args.assume_sapp,
    )
    try:
        result = api.transform(source, args.function, options)
    except api.ApiError as err:
        return _api_error(err)
    if args.json:
        print(result.to_json(indent=2), end="")
        return 0 if result.transformed else 1
    print(result.report_text)
    for group in result.forms:
        print()
        for form in group:
            print(form)
    return 0 if result.transformed else 1


def cmd_run(args: argparse.Namespace) -> int:
    recorder = _make_recorder(args)
    source = _read_source(args.file)
    if source is None:
        return 2
    options = api.RunOptions(
        processors=args.processors,
        transform=tuple(args.transform),
        assume_sapp=args.assume_sapp,
        free_sync=args.free_sync,
        seed=args.seed,
        faults=args.faults,
        race_check=args.race_check,
        lock_wait_timeout=args.lock_wait_timeout,
        timeline=args.timeline,
        eval_mode=args.eval_mode,
    )
    try:
        result = api.run(source, args.expr, options, recorder=recorder)
    except api.ApiError as err:
        return _api_error(err)
    if args.json:
        print(result.to_json(indent=2), end="")
        return _finish_observability(recorder, args)
    print(f";; value: {result.value}")
    for output in result.outputs:
        print(f";; output: {output}")
    print(
        f";; machine: {result.total_time} steps, {result.processes} "
        f"process(es), mean concurrency {result.mean_concurrency:.2f}, "
        f"utilization {result.utilization:.2f}"
    )
    if result.seed is not None:
        print(f";; seed: {result.seed} (scheduling"
              + (" + fault plan)" if result.fault_plan is not None else ")"))
    if result.fault_plan is not None:
        print(f";; faults: {result.fault_plan}")
    if result.races is not None:
        print(f";; races: {result.races}")
    if result.timeline is not None:
        print(result.timeline)
    return _finish_observability(recorder, args)


def cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from repro.serve import ReproServer, RequestFaultPlan, ServeConfig

    if args.workers < 1 or args.backlog < 0:
        print(";; serve: --workers must be >= 1 and --backlog >= 0",
              file=sys.stderr)
        return 2
    recorder = _make_recorder(args)
    chaos = None
    if args.chaos_seed is not None:
        chaos = RequestFaultPlan(args.chaos_seed, budget=args.chaos_budget)
    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        backlog=args.backlog,
        default_deadline_ms=args.deadline_ms,
        drain_timeout=args.drain_timeout,
        executor=args.executor,
        chaos=chaos,
        cache_server=args.cache_server,
        recorder=recorder,
    )
    server = ReproServer(config)
    try:
        host, port = server.start()
    except OSError as err:
        print(f";; serve: cannot bind {args.host}:{args.port}: {err}",
              file=sys.stderr)
        return 2
    print(f";; serve: listening on {host}:{port} "
          f"({config.workers} {config.executor} worker(s), "
          f"backlog {config.backlog})",
          flush=True)
    if chaos is not None:
        print(f";; serve: chaos {chaos.describe()}", flush=True)

    def _request_drain(_signum, _frame):
        print(";; serve: drain requested", flush=True)
        server.request_drain()

    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, _request_drain)
    server.serve_forever()
    counters = server.service.counters()
    print(f";; serve: drained "
          f"({counters.get('serve.request.ok', 0)} ok, "
          f"{counters.get('serve.request.rejected', 0)} rejected, "
          f"{counters.get('serve.request.deadline_exceeded', 0)} "
          f"deadline-exceeded)", flush=True)
    return _finish_observability(recorder, args)


def cmd_route(args: argparse.Namespace) -> int:
    import signal

    from repro.fleet.router import RouterConfig, ShardRouter, parse_backend
    from repro.serve import FleetFaultPlan

    try:
        for spec in args.backend:
            parse_backend(spec)
    except ValueError as err:
        print(f";; route: {err}", file=sys.stderr)
        return 2
    if args.attempts < 1 or args.vnodes < 1:
        print(";; route: --attempts and --vnodes must be >= 1",
              file=sys.stderr)
        return 2
    recorder = _make_recorder(args)
    chaos = None
    if args.chaos_seed is not None:
        chaos = FleetFaultPlan(args.chaos_seed, budget=args.chaos_budget)
    config = RouterConfig(
        host=args.host,
        port=args.port,
        backends=tuple(args.backend),
        vnodes=args.vnodes,
        connect_timeout_s=args.connect_timeout,
        request_timeout_s=args.request_timeout,
        default_deadline_ms=args.deadline_ms,
        attempts=args.attempts,
        seed=args.seed,
        fallback=not args.no_fallback,
        cache_size=args.cache_size,
        cache_server=args.cache_server,
        auto_rejoin=not args.no_auto_rejoin,
        drain_timeout=args.drain_timeout,
        chaos=chaos,
        recorder=recorder,
    )
    router = ShardRouter(config)
    try:
        host, port = router.start()
    except OSError as err:
        print(f";; route: cannot bind {args.host}:{args.port}: {err}",
              file=sys.stderr)
        return 2
    print(f";; route: listening on {host}:{port} "
          f"({len(config.backends)} backend(s), "
          f"{config.attempts} attempt(s), "
          f"fallback {'on' if config.fallback else 'off'})",
          flush=True)
    if chaos is not None:
        print(f";; route: chaos {chaos.describe()}", flush=True)

    def _request_drain(_signum, _frame):
        print(";; route: drain requested", flush=True)
        router.request_drain()

    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, _request_drain)
    router.serve_forever()
    counters = router.counters()
    print(f";; route: drained "
          f"({counters.get('fleet.request.ok', 0)} ok, "
          f"{counters.get('fleet.route.failovers', 0)} failover(s), "
          f"{counters.get('fleet.fallback', 0)} fallback(s), "
          f"{counters.get('fleet.cache.hits', 0)} cache hit(s))",
          flush=True)
    return _finish_observability(recorder, args)


def cmd_cache_serve(args: argparse.Namespace) -> int:
    import signal

    from repro.serve import CacheServeConfig, CacheServer

    recorder = _make_recorder(args)
    config = CacheServeConfig(
        host=args.host,
        port=args.port,
        root=args.root,
        drain_timeout=args.drain_timeout,
        recorder=recorder,
    )
    server = CacheServer(config)
    try:
        host, port = server.start()
    except OSError as err:
        print(f";; cache-serve: cannot bind {args.host}:{args.port}: {err}",
              file=sys.stderr)
        return 2
    print(f";; cache-serve: listening on {host}:{port} "
          f"(root {config.root})", flush=True)

    def _request_drain(_signum, _frame):
        print(";; cache-serve: drain requested", flush=True)
        server.request_drain()

    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, _request_drain)
    server.serve_forever()
    counters = server.counters()
    print(f";; cache-serve: drained "
          f"({counters.get('cache.server.hits', 0)} hit(s), "
          f"{counters.get('cache.server.misses', 0)} miss(es), "
          f"{counters.get('cache.server.stores', 0)} store(s), "
          f"{counters.get('cache.server.rejected_puts', 0)} rejected "
          f"put(s))", flush=True)
    return _finish_observability(recorder, args)


def cmd_chaos(args: argparse.Namespace) -> int:
    if args.fleet:
        return _cmd_chaos_fleet(args)
    from repro.harness.chaos import (
        chaos_sweep,
        fault_matrix,
        misdeclared_workload,
        paper_workloads,
    )
    from repro.harness.report import format_robustness, robustness_envelope

    plans = fault_matrix(args.seed, budget=args.budget)
    if args.plans:
        known = {p.name for p in plans}
        unknown = [n for n in args.plans if n not in known]
        if unknown:
            print(f";; unknown fault plan(s): {', '.join(unknown)}; "
                  f"choose from: {', '.join(sorted(known))}", file=sys.stderr)
            return 2
        plans = [p for p in plans if p.name in args.plans]
    workloads = paper_workloads(args.size)
    if args.misdeclared:
        workloads.append(misdeclared_workload(args.size))
    recorder = _make_recorder(args)
    report = chaos_sweep(
        workloads,
        seed=args.seed,
        plans=plans,
        processors=args.processors,
        sched_seed=args.sched_seed,
        recorder=recorder,
    )
    print(format_robustness(report))
    if args.out:
        from repro.envelope import dumps

        try:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(dumps(robustness_envelope(report)))
        except OSError as err:
            print(f";; cannot write report to {args.out!r}: {err}",
                  file=sys.stderr)
            return 2
        print(f";; report: {args.out}")
    obs_code = _finish_observability(recorder, args)
    if obs_code != 0:
        return obs_code
    return 0 if report.ok else 1


def _cmd_chaos_fleet(args: argparse.Namespace) -> int:
    from repro.fleet.chaosrun import format_fleet_chaos, run_fleet_chaos

    recorder = _make_recorder(args)
    report = run_fleet_chaos(
        seed=args.seed,
        backends=args.fleet_backends,
        requests=args.fleet_requests,
        kill_one=not args.fleet_no_kill,
        budget=args.budget,
        recorder=recorder,
    )
    print(format_fleet_chaos(report))
    if args.out:
        from repro.envelope import KIND_ROBUSTNESS, dumps, wrap

        try:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(dumps(wrap(KIND_ROBUSTNESS, report)))
        except OSError as err:
            print(f";; cannot write report to {args.out!r}: {err}",
                  file=sys.stderr)
            return 2
        print(f";; report: {args.out}")
    obs_code = _finish_observability(recorder, args)
    if obs_code != 0:
        return obs_code
    return 0 if report["ok"] else 1


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.envelope import KIND_PERF, EnvelopeError, dumps, unwrap, wrap
    from repro.perf.bench import (
        BENCH_CASES,
        compare_reports,
        format_report,
        markdown_report,
        min_speedup_failures,
        missing_cases,
        run_suite,
    )

    cases = args.cases or None
    if cases:
        unknown = [name for name in cases if name not in BENCH_CASES]
        if unknown:
            print(f";; unknown bench case(s): {', '.join(unknown)}; "
                  f"choose from: {', '.join(BENCH_CASES)}", file=sys.stderr)
            return 2
    baseline = None
    if args.compare:
        from repro.perf.bench import validate_report

        # Read the baseline *before* the suite runs: failing fast beats
        # failing after minutes of measurement, and --out may name the
        # same file (its default is the checked-in baseline path) — the
        # gate must compare against the pre-run contents, not whatever
        # was just written over them.
        try:
            with open(args.compare, encoding="utf-8") as handle:
                baseline_doc = json.load(handle)
        except (OSError, ValueError) as err:
            print(f";; cannot read baseline {args.compare!r}: {err}",
                  file=sys.stderr)
            return 2
        try:
            baseline = unwrap(baseline_doc, KIND_PERF)
        except EnvelopeError as err:
            print(f";; invalid baseline {args.compare!r}: {err}",
                  file=sys.stderr)
            return 2
        problems = validate_report(baseline)
        if problems:
            print(f";; invalid baseline {args.compare!r}: {problems[0]}",
                  file=sys.stderr)
            return 2
    report = run_suite(repeats=args.repeats, cases=cases)
    print(format_report(report))
    if args.out:
        try:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(dumps(wrap(KIND_PERF, report)))
        except OSError as err:
            print(f";; cannot write report to {args.out!r}: {err}",
                  file=sys.stderr)
            return 2
        print(f";; report: {args.out}")
    summary_path = args.markdown or os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        try:
            with open(summary_path, "a", encoding="utf-8") as handle:
                handle.write(markdown_report(report))
        except OSError as err:
            print(f";; cannot write markdown summary to "
                  f"{summary_path!r}: {err}", file=sys.stderr)
            return 2
        print(f";; markdown summary: {summary_path}")
    if baseline is not None:
        absent = missing_cases(report, baseline)
        if absent:
            ran = ", ".join(report.get("cases", {})) or "none"
            print(f";; baseline {args.compare!r} has case(s) missing from "
                  f"the current run: {', '.join(absent)} (ran: {ran}); "
                  "pass matching --cases or regenerate the baseline",
                  file=sys.stderr)
            return 2
        failures = compare_reports(report, baseline, args.max_regress)
        if failures:
            print(";; perf regression(s) vs "
                  f"{args.compare} (max allowed +{args.max_regress:.0f}%):")
            for failure in failures:
                print(f";;   {failure}")
            return 1
        print(f";; no perf regressions vs {args.compare} "
              f"(max allowed +{args.max_regress:.0f}%)")
    if args.min_speedup is not None:
        floor_failures = min_speedup_failures(report, args.min_speedup)
        if floor_failures:
            print(f";; per-case speedup floor {args.min_speedup:.2f}x "
                  "violated:")
            for failure in floor_failures:
                print(f";;   {failure}")
            return 1
        print(f";; all cases at or above the {args.min_speedup:.2f}x "
              "speedup floor")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    if args.list:
        for name, points in api.sweep_grids().items():
            print(f"{name:<8} {points} point(s)")
        return 0
    cache_dir = None if args.no_cache else args.cache_dir
    cache_server = None if args.no_cache else args.cache_server
    recorder = _make_recorder(args)
    options = api.SweepOptions(
        workers=args.workers,
        job_timeout=args.job_timeout,
        cache_dir=cache_dir,
        cache_server=cache_server,
    )
    try:
        report = api.sweep(args.grid, options, recorder=recorder)
    except api.ApiError as err:
        return _api_error(err)
    print(report.format())
    out = args.out if args.out is not None else f"sweep-{args.grid}.json"
    if out:
        from repro.envelope import dumps

        try:
            with open(out, "w", encoding="utf-8") as handle:
                handle.write(dumps(report.to_dict()))
        except OSError as err:
            print(f";; cannot write report to {out!r}: {err}",
                  file=sys.stderr)
            return 2
        print(f";; report: {out}")
    obs_code = _finish_observability(recorder, args)
    if obs_code != 0:
        return obs_code
    if report.failed:
        return 1
    if args.min_hit_rate is not None:
        rate = report.hit_rate * 100.0
        if rate < args.min_hit_rate:
            print(f";; cache hit rate {rate:.1f}% below required "
                  f"{args.min_hit_rate:.1f}%", file=sys.stderr)
            return 1
        print(f";; cache hit rate {rate:.1f}% >= "
              f"required {args.min_hit_rate:.1f}%")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import Recorder
    from repro.obs.workloads import run_trace_workload, trace_workloads

    registry = trace_workloads()
    if args.list:
        for name, workload in registry.items():
            print(f"{name:<8} {workload.description}")
        return 0
    if args.workload is None:
        print(";; trace: workload name required (try --list)",
              file=sys.stderr)
        return 2
    workload = registry.get(args.workload)
    if workload is None:
        print(f";; unknown workload {args.workload!r}; "
              f"choose from: {', '.join(sorted(registry))}", file=sys.stderr)
        return 2
    recorder = Recorder()
    run = run_trace_workload(
        workload, recorder, seed=args.seed, processors=args.processors
    )
    print(f";; workload: {workload.name} — {workload.description}")
    print(f";; value: {run.result_text}")
    stats = run.stats
    print(
        f";; machine: {stats.total_time} steps, {stats.processes} "
        f"process(es), mean concurrency {stats.mean_concurrency:.2f}, "
        f"utilization {stats.utilization:.2f}"
    )
    if args.seed is not None:
        print(f";; seed: {args.seed} (scheduling)")
    if args.profile or not args.trace_out:
        from repro.obs import render_profile

        print(render_profile(recorder))
    if args.trace_out:
        # Reuse the shared writer (handles format + malformed paths).
        args.profile = False
        return _finish_observability(recorder, args)
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help(sys.stderr)
        return 2
    handlers = {
        "analyze": cmd_analyze,
        "transform": cmd_transform,
        "run": cmd_run,
        "serve": cmd_serve,
        "cache-serve": cmd_cache_serve,
        "route": cmd_route,
        "chaos": cmd_chaos,
        "trace": cmd_trace,
        "bench": cmd_bench,
        "sweep": cmd_sweep,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
