"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``analyze FILE -f NAME``    — run the §2/§3 analysis, print the
  feedback report (conflicts, distances, suggested declarations).
* ``transform FILE -f NAME``  — restructure one function and print the
  transformed source (plus wrapper forms).
* ``run FILE -e EXPR``        — evaluate the program and an expression
  on the simulated machine; prints the value and machine statistics.
* ``chaos``                   — sweep the paper workloads across the
  seeded fault matrix and assert sequentializability survives every
  plan (exit 1 on any silent wrong answer).
* ``trace WORKLOAD``          — run a named paper workload with the
  flight recorder armed end to end and export the trace
  (``--trace-out``, Chrome ``trace_event`` or JSONL format).
* ``bench``                   — run the pinned perf suite (baseline vs
  optimized mode, median-of-N), write ``BENCH_perf.json``, and with
  ``--compare BASELINE.json --max-regress PCT`` gate on regressions
  (exit 1 when any case regresses beyond the threshold).
* ``sweep``                   — run a parameter-sweep grid (fig06/
  fig07/fig10 families + analytic-model validation) across
  ``--workers`` OS processes through the persistent result cache,
  writing one JSON report; exit 1 on failed points or (with
  ``--min-hit-rate``) on a cold cache.

``run``, ``chaos``, and ``trace`` all take ``--profile`` (print phase
timings and counters) and ``--trace-out PATH`` (write the recorded
trace; ``--trace-format`` picks the encoding).  Exit code 2 flags a
usage error: unknown workload/plan, or an unwritable trace path.

Every file-taking command reads ``(declaim ...)`` forms from the file.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.lisp.interpreter import Interpreter
from repro.runtime.clock import CostModel, FREE_SYNC
from repro.runtime.machine import Machine
from repro.sexpr.printer import pretty_str, write_str
from repro.transform.pipeline import Curare


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Curare: restructure Lisp programs for concurrent execution",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("file", help="Lisp source file (with declaim forms)")
    common.add_argument(
        "--assume-sapp", action="store_true",
        help="treat every parameter as SAPP-declared (experiment mode)",
    )

    obs_common = argparse.ArgumentParser(add_help=False)
    obs_common.add_argument(
        "--profile", action="store_true",
        help="record the run and print phase timings + counters",
    )
    obs_common.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write the recorded trace to this file",
    )
    obs_common.add_argument(
        "--trace-format", choices=["chrome", "jsonl"], default="chrome",
        help="trace encoding: Chrome trace_event JSON (default, loads "
             "in Perfetto/about://tracing) or JSON lines",
    )

    p_analyze = sub.add_parser(
        "analyze", parents=[common], help="report conflicts for a function"
    )
    p_analyze.add_argument("-f", "--function", required=True)

    p_transform = sub.add_parser(
        "transform", parents=[common], help="restructure a function"
    )
    p_transform.add_argument("-f", "--function", required=True)
    p_transform.add_argument(
        "--mode", choices=["spawn", "enqueue"], default="spawn"
    )
    p_transform.add_argument("--suffix", default="-cc")
    p_transform.add_argument("--early-release", action="store_true")
    p_transform.add_argument("--use-delay", action="store_true")
    p_transform.add_argument(
        "--no-dps", action="store_true",
        help="use futures instead of destination-passing for stored calls",
    )
    p_transform.add_argument(
        "--whole-program", action="store_true",
        help="transform every eligible function and retarget callers",
    )

    p_run = sub.add_parser(
        "run", parents=[common, obs_common],
        help="evaluate an expression on the simulated machine",
    )
    p_run.add_argument("-e", "--expr", required=True)
    p_run.add_argument("-p", "--processors", type=int, default=4)
    p_run.add_argument(
        "--transform", metavar="NAME", action="append", default=[],
        help="transform these functions first (repeatable)",
    )
    p_run.add_argument("--free-sync", action="store_true",
                       help="zero all synchronization costs")
    p_run.add_argument("--seed", type=int, default=None,
                       help="random scheduling with this seed; also seeds "
                            "--faults and is echoed in the report")
    p_run.add_argument("--faults", metavar="PLAN", default=None,
                       help="inject faults from this plan of the fault "
                            "matrix (e.g. 'mixed'), seeded by --seed")
    p_run.add_argument("--race-check", action="store_true",
                       help="run the online vector-clock race detector")
    p_run.add_argument("--lock-wait-timeout", type=int, default=None,
                       help="abort if any process waits on a lock this long")
    p_run.add_argument("--timeline", action="store_true",
                       help="print the occupancy sparkline and process gantt")

    p_chaos = sub.add_parser(
        "chaos", parents=[obs_common],
        help="sweep paper workloads across the seeded fault matrix",
    )
    p_chaos.add_argument("--seed", type=int, default=0,
                         help="fault-matrix seed (plans derive from it)")
    p_chaos.add_argument("--sched-seed", type=int, default=None,
                         help="random scheduling with this seed "
                              "(default: deterministic fifo)")
    p_chaos.add_argument("-p", "--processors", type=int, default=4)
    p_chaos.add_argument("--budget", type=int, default=200,
                         help="max faults injected per plan")
    p_chaos.add_argument("--plans", metavar="NAME", action="append",
                         default=[],
                         help="restrict to these fault plans (repeatable)")
    p_chaos.add_argument("--size", type=int, default=8,
                         help="workload size (list length)")
    p_chaos.add_argument("--misdeclared", action="store_true",
                         help="also attack the intentionally mis-declared "
                              "workload (must recover, not fail)")

    p_bench = sub.add_parser(
        "bench",
        help="run the pinned perf suite and optionally gate on a baseline",
    )
    p_bench.add_argument("--out", metavar="PATH", default="BENCH_perf.json",
                         help="write the JSON report here "
                              "(default: BENCH_perf.json)")
    p_bench.add_argument("--compare", metavar="BASELINE", default=None,
                         help="compare against this baseline report and "
                              "exit 1 on regression")
    p_bench.add_argument("--max-regress", type=float, default=30.0,
                         metavar="PCT",
                         help="allowed regression in normalized time, "
                              "percent (default: 30)")
    p_bench.add_argument("--repeats", type=int, default=5,
                         help="iterations per case per mode; the median "
                              "is reported (default: 5)")
    p_bench.add_argument("--cases", metavar="NAME", action="append",
                         default=[],
                         help="restrict to these cases (repeatable)")

    p_sweep = sub.add_parser(
        "sweep", parents=[obs_common],
        help="run a sharded parameter sweep through the result cache",
    )
    p_sweep.add_argument("--grid", default="smoke",
                         help="grid name (see --list; default: smoke)")
    p_sweep.add_argument("--list", action="store_true",
                         help="list the available grids and exit")
    p_sweep.add_argument("--workers", type=int, default=1,
                         help="worker processes (0 = run inline in this "
                              "process; default: 1)")
    p_sweep.add_argument("--out", metavar="PATH", default=None,
                         help="write the JSON report here "
                              "(default: sweep-<grid>.json)")
    p_sweep.add_argument("--cache-dir", metavar="DIR",
                         default=".repro-cache",
                         help="persistent result-cache directory "
                              "(default: .repro-cache)")
    p_sweep.add_argument("--no-cache", action="store_true",
                         help="bypass the persistent result cache")
    p_sweep.add_argument("--job-timeout", type=float, default=300.0,
                         metavar="SEC",
                         help="per-job deadline in seconds; an overdue "
                              "job's worker is terminated and respawned "
                              "(default: 300)")
    p_sweep.add_argument("--min-hit-rate", type=float, default=None,
                         metavar="PCT",
                         help="fail (exit 1) when the cache hit rate is "
                              "below this percentage — the warm-cache CI "
                              "assertion")

    p_trace = sub.add_parser(
        "trace", parents=[obs_common],
        help="flight-record a named paper workload",
    )
    p_trace.add_argument(
        "workload", nargs="?", default=None,
        help="workload name (see --list), e.g. fig07",
    )
    p_trace.add_argument("--list", action="store_true",
                         help="list the available workloads and exit")
    p_trace.add_argument("-p", "--processors", type=int, default=None,
                         help="override the workload's processor count")
    p_trace.add_argument("--seed", type=int, default=None,
                         help="random scheduling with this seed "
                              "(default: deterministic fifo)")

    return parser


def _load(path: str, assume_sapp: bool, recorder=None) -> Curare:
    interp = Interpreter()
    curare = Curare(interp, assume_sapp=assume_sapp, recorder=recorder)
    with open(path, encoding="utf-8") as handle:
        curare.load_program(handle.read())
    return curare


def _make_recorder(args: argparse.Namespace):
    """One recorder when any observability flag asks for it, else None
    (the machine's pay-for-what-you-use guarantee hinges on None)."""
    if getattr(args, "profile", False) or getattr(args, "trace_out", None):
        from repro.obs import Recorder

        return Recorder()
    return None


def _finish_observability(recorder, args: argparse.Namespace) -> int:
    """Print the profile and/or write the trace file; returns an exit
    code (0, or 2 on an unwritable path)."""
    if recorder is None:
        return 0
    if args.profile:
        from repro.obs import render_profile

        print(render_profile(recorder))
    if args.trace_out:
        from repro.obs import write_chrome_trace, write_jsonl

        writer = (
            write_jsonl if args.trace_format == "jsonl" else write_chrome_trace
        )
        try:
            writer(recorder, args.trace_out)
        except OSError as err:
            print(f";; cannot write trace to {args.trace_out!r}: {err}",
                  file=sys.stderr)
            return 2
        print(f";; trace ({args.trace_format}): {args.trace_out} "
              f"[{len(recorder.events)} event(s)]")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis.report import explain

    curare = _load(args.file, args.assume_sapp)
    analysis = curare.analyze(args.function)
    print(explain(analysis).render())
    return 0


def cmd_transform(args: argparse.Namespace) -> int:
    curare = _load(args.file, args.assume_sapp)
    if args.whole_program:
        from repro.transform.program import transform_program

        program_result = transform_program(
            curare,
            suffix=args.suffix,
            mode=args.mode,
            early_release=args.early_release,
            use_delay=args.use_delay,
            prefer_dps=not args.no_dps,
        )
        print(program_result.report())
        for outcome in program_result.transformed.values():
            print()
            print(pretty_str(outcome.final_form))
            for form in outcome.extra_forms:
                print(pretty_str(form))
        return 0
    result = curare.transform(
        args.function,
        suffix=args.suffix,
        mode=args.mode,
        early_release=args.early_release,
        use_delay=args.use_delay,
        prefer_dps=not args.no_dps,
    )
    print(result.report())
    if result.transformed:
        print()
        print(pretty_str(result.final_form))
        for form in result.extra_forms:
            print(pretty_str(form))
        return 0
    return 1


def cmd_run(args: argparse.Namespace) -> int:
    recorder = _make_recorder(args)
    curare = _load(args.file, args.assume_sapp, recorder=recorder)
    for name in args.transform:
        outcome = curare.transform(name)
        if not outcome.transformed:
            print(f";; could not transform {name}: {outcome.reason}",
                  file=sys.stderr)
            return 1
    cost = FREE_SYNC if args.free_sync else CostModel()
    faults = None
    if args.faults is not None:
        from repro.runtime.faults import fault_matrix

        plans = {p.name: p for p in fault_matrix(args.seed or 0)}
        if args.faults not in plans:
            print(f";; unknown fault plan {args.faults!r}; "
                  f"choose from: {', '.join(sorted(plans))}", file=sys.stderr)
            return 2
        faults = plans[args.faults]
    detector = None
    if args.race_check:
        from repro.runtime.racecheck import RaceDetector

        detector = RaceDetector()
    machine = Machine(
        curare.interp,
        processors=args.processors,
        cost_model=cost,
        policy="random" if args.seed is not None else "fifo",
        seed=args.seed,
        faults=faults,
        race_detector=detector,
        lock_wait_timeout=args.lock_wait_timeout,
        recorder=recorder,
    )
    main = machine.spawn_text(args.expr)
    stats = machine.run()
    print(f";; value: {write_str(main.result)}")
    for output in machine.outputs:
        print(f";; output: {write_str(output)}")
    print(
        f";; machine: {stats.total_time} steps, {stats.processes} "
        f"process(es), mean concurrency {stats.mean_concurrency:.2f}, "
        f"utilization {stats.utilization:.2f}"
    )
    if args.seed is not None:
        print(f";; seed: {args.seed} (scheduling"
              + (" + fault plan)" if faults is not None else ")"))
    if faults is not None:
        print(f";; faults: {faults.describe()}")
    if detector is not None:
        print(f";; races: {detector.summary()}")
    if args.timeline:
        from repro.harness.timeline import occupancy_sparkline, process_gantt

        print(occupancy_sparkline(stats, processors=args.processors))
        print(process_gantt(machine))
    return _finish_observability(recorder, args)


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.harness.chaos import (
        chaos_sweep,
        misdeclared_workload,
        paper_workloads,
    )
    from repro.harness.report import format_robustness
    from repro.runtime.faults import fault_matrix

    plans = fault_matrix(args.seed, budget=args.budget)
    if args.plans:
        known = {p.name for p in plans}
        unknown = [n for n in args.plans if n not in known]
        if unknown:
            print(f";; unknown fault plan(s): {', '.join(unknown)}; "
                  f"choose from: {', '.join(sorted(known))}", file=sys.stderr)
            return 2
        plans = [p for p in plans if p.name in args.plans]
    workloads = paper_workloads(args.size)
    if args.misdeclared:
        workloads.append(misdeclared_workload(args.size))
    recorder = _make_recorder(args)
    report = chaos_sweep(
        workloads,
        seed=args.seed,
        plans=plans,
        processors=args.processors,
        sched_seed=args.sched_seed,
        recorder=recorder,
    )
    print(format_robustness(report))
    obs_code = _finish_observability(recorder, args)
    if obs_code != 0:
        return obs_code
    return 0 if report.ok else 1


def cmd_bench(args: argparse.Namespace) -> int:
    import json

    from repro.perf.bench import (
        BENCH_CASES,
        compare_reports,
        format_report,
        run_suite,
    )

    cases = args.cases or None
    if cases:
        unknown = [name for name in cases if name not in BENCH_CASES]
        if unknown:
            print(f";; unknown bench case(s): {', '.join(unknown)}; "
                  f"choose from: {', '.join(BENCH_CASES)}", file=sys.stderr)
            return 2
    report = run_suite(repeats=args.repeats, cases=cases)
    print(format_report(report))
    if args.out:
        try:
            with open(args.out, "w", encoding="utf-8") as handle:
                json.dump(report, handle, indent=2, sort_keys=True)
                handle.write("\n")
        except OSError as err:
            print(f";; cannot write report to {args.out!r}: {err}",
                  file=sys.stderr)
            return 2
        print(f";; report: {args.out}")
    if args.compare:
        from repro.perf.bench import validate_report

        try:
            with open(args.compare, encoding="utf-8") as handle:
                baseline = json.load(handle)
        except (OSError, ValueError) as err:
            print(f";; cannot read baseline {args.compare!r}: {err}",
                  file=sys.stderr)
            return 2
        problems = validate_report(baseline)
        if problems:
            print(f";; invalid baseline {args.compare!r}: {problems[0]}",
                  file=sys.stderr)
            return 2
        failures = compare_reports(report, baseline, args.max_regress)
        if failures:
            print(";; perf regression(s) vs "
                  f"{args.compare} (max allowed +{args.max_regress:.0f}%):")
            for failure in failures:
                print(f";;   {failure}")
            return 1
        print(f";; no perf regressions vs {args.compare} "
              f"(max allowed +{args.max_regress:.0f}%)")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    import time

    from repro.scale import (
        build_report,
        dumps_report,
        format_sweep,
        grid_jobs,
        grid_names,
        run_jobs,
    )

    if args.list:
        for name in grid_names():
            print(f"{name:<8} {len(grid_jobs(name))} point(s)")
        return 0
    try:
        jobs = grid_jobs(args.grid)
    except KeyError:
        print(f";; unknown grid {args.grid!r}; "
              f"choose from: {', '.join(grid_names())}", file=sys.stderr)
        return 2
    if args.workers < 0:
        print(";; --workers must be >= 0", file=sys.stderr)
        return 2
    cache_dir = None if args.no_cache else args.cache_dir
    recorder = _make_recorder(args)
    start = time.perf_counter()
    outcomes = run_jobs(
        jobs,
        workers=args.workers,
        job_timeout=args.job_timeout,
        cache_dir=cache_dir,
        recorder=recorder,
    )
    total_ms = (time.perf_counter() - start) * 1000.0
    report = build_report(args.grid, outcomes, args.workers, cache_dir,
                          total_ms)
    print(format_sweep(report))
    out = args.out if args.out is not None else f"sweep-{args.grid}.json"
    if out:
        try:
            with open(out, "w", encoding="utf-8") as handle:
                handle.write(dumps_report(report))
        except OSError as err:
            print(f";; cannot write report to {out!r}: {err}",
                  file=sys.stderr)
            return 2
        print(f";; report: {out}")
    obs_code = _finish_observability(recorder, args)
    if obs_code != 0:
        return obs_code
    if report["summary"]["failed"]:
        return 1
    if args.min_hit_rate is not None:
        rate = report["cache"]["hit_rate"] * 100.0
        if rate < args.min_hit_rate:
            print(f";; cache hit rate {rate:.1f}% below required "
                  f"{args.min_hit_rate:.1f}%", file=sys.stderr)
            return 1
        print(f";; cache hit rate {rate:.1f}% >= "
              f"required {args.min_hit_rate:.1f}%")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import Recorder
    from repro.obs.workloads import run_trace_workload, trace_workloads

    registry = trace_workloads()
    if args.list:
        for name, workload in registry.items():
            print(f"{name:<8} {workload.description}")
        return 0
    if args.workload is None:
        print(";; trace: workload name required (try --list)",
              file=sys.stderr)
        return 2
    workload = registry.get(args.workload)
    if workload is None:
        print(f";; unknown workload {args.workload!r}; "
              f"choose from: {', '.join(sorted(registry))}", file=sys.stderr)
        return 2
    recorder = Recorder()
    run = run_trace_workload(
        workload, recorder, seed=args.seed, processors=args.processors
    )
    print(f";; workload: {workload.name} — {workload.description}")
    print(f";; value: {run.result_text}")
    stats = run.stats
    print(
        f";; machine: {stats.total_time} steps, {stats.processes} "
        f"process(es), mean concurrency {stats.mean_concurrency:.2f}, "
        f"utilization {stats.utilization:.2f}"
    )
    if args.seed is not None:
        print(f";; seed: {args.seed} (scheduling)")
    if args.profile or not args.trace_out:
        from repro.obs import render_profile

        print(render_profile(recorder))
    if args.trace_out:
        # Reuse the shared writer (handles format + malformed paths).
        args.profile = False
        return _finish_observability(recorder, args)
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "analyze": cmd_analyze,
        "transform": cmd_transform,
        "run": cmd_run,
        "chaos": cmd_chaos,
        "trace": cmd_trace,
        "bench": cmd_bench,
        "sweep": cmd_sweep,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
