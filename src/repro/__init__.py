"""repro — a reproduction of Curare: Restructuring Lisp Programs for
Concurrent Execution (James R. Larus, UCB/CSD 87/344; PPEALS/PPOPP 1988).

The package layers, bottom to top:

* :mod:`repro.sexpr`     — S-expression reader/printer and datum model
* :mod:`repro.lisp`      — mini-Lisp interpreter (effect-generator style)
* :mod:`repro.ir`        — typed IR, CFG, dominators
* :mod:`repro.paths`     — §2 access-path formalism (accessor regexes,
  transfer functions, conflict distances, SAPP)
* :mod:`repro.analysis`  — recursion / head-tail / conflict analysis
* :mod:`repro.declare`   — §6 declarations
* :mod:`repro.transform` — CRI, locking, delay, reorder, iteration, DPS
* :mod:`repro.runtime`   — simulated multiprocessor, server pools,
  sequentializability checking
* :mod:`repro.model`     — the paper's closed-form performance model
* :mod:`repro.harness`   — workload generators and experiment helpers
* :mod:`repro.api`       — the stable public facade (start here)
* :mod:`repro.serve`     — the concurrent analysis service hosting it

Quickstart — the supported entry point is the :mod:`repro.api` facade
(the CLI and the ``repro serve`` service are thin shells over it)::

    import repro

    SOURCE = '''
        (declaim (sapp f l))
        (defun f (l)
          (cond ((null l) nil)
                ((null (cdr l)) (f (cdr l)))
                (t (setf (cadr l) (+ (car l) (cadr l)))
                   (f (cdr l)))))
        (setq data (list 1 2 3 4))
    '''
    report = repro.analyze(SOURCE, "f")
    print(report.text)

    result = repro.run(SOURCE, "(progn (f-cc data) (identity data))",
                       repro.RunOptions(processors=4, transform=("f",)))
    print(result.value, result.mean_concurrency)
    print(result.to_json(indent=2))   # deterministic modulo "wall"

The engine types (``Curare``, ``Interpreter``, ``Machine``, ...)
remain exported for tests and notebooks that drive the internals
directly, but hosting layers go through the facade only.
"""

from repro.api import (
    AnalysisResult,
    ApiError,
    BadRequest,
    EngineError,
    RunOptions,
    RunResult,
    SweepOptions,
    SweepReport,
    TransformOptions,
    TransformRefused,
    TransformResult,
    analyze,
    run,
    sweep,
    sweep_grids,
    transform,
)
from repro.declare import DeclarationRegistry
from repro.lisp import Interpreter, SequentialRunner
from repro.runtime import CostModel, Machine, run_server_pool
from repro.transform import Curare

__version__ = "1.1.0"

__all__ = [
    # the stable facade
    "AnalysisResult",
    "ApiError",
    "BadRequest",
    "EngineError",
    "RunOptions",
    "RunResult",
    "SweepOptions",
    "SweepReport",
    "TransformOptions",
    "TransformRefused",
    "TransformResult",
    "analyze",
    "run",
    "sweep",
    "sweep_grids",
    "transform",
    # engine types (for tests/notebooks driving internals)
    "CostModel",
    "Curare",
    "DeclarationRegistry",
    "Interpreter",
    "Machine",
    "SequentialRunner",
    "run_server_pool",
    "__version__",
]
