"""repro — a reproduction of Curare: Restructuring Lisp Programs for
Concurrent Execution (James R. Larus, UCB/CSD 87/344; PPEALS/PPOPP 1988).

The package layers, bottom to top:

* :mod:`repro.sexpr`     — S-expression reader/printer and datum model
* :mod:`repro.lisp`      — mini-Lisp interpreter (effect-generator style)
* :mod:`repro.ir`        — typed IR, CFG, dominators
* :mod:`repro.paths`     — §2 access-path formalism (accessor regexes,
  transfer functions, conflict distances, SAPP)
* :mod:`repro.analysis`  — recursion / head-tail / conflict analysis
* :mod:`repro.declare`   — §6 declarations
* :mod:`repro.transform` — CRI, locking, delay, reorder, iteration, DPS
* :mod:`repro.runtime`   — simulated multiprocessor, server pools,
  sequentializability checking
* :mod:`repro.model`     — the paper's closed-form performance model
* :mod:`repro.harness`   — workload generators and experiment helpers

Quickstart::

    from repro import Curare, Interpreter, Machine

    interp = Interpreter()
    curare = Curare(interp, assume_sapp=True)
    curare.load_program('''
        (defun f (l)
          (cond ((null l) nil)
                ((null (cdr l)) (f (cdr l)))
                (t (setf (cadr l) (+ (car l) (cadr l)))
                   (f (cdr l)))))
    ''')
    result = curare.transform("f")
    print(result.report())

    curare.runner.eval_text("(setq data (list 1 2 3 4))")
    machine = Machine(interp, processors=4)
    machine.spawn_text("(f-cc data)")
    machine.run()
"""

from repro.lisp import Interpreter, SequentialRunner
from repro.runtime import CostModel, Machine, run_server_pool
from repro.transform import Curare
from repro.declare import DeclarationRegistry

__version__ = "1.0.0"

__all__ = [
    "CostModel",
    "Curare",
    "DeclarationRegistry",
    "Interpreter",
    "Machine",
    "SequentialRunner",
    "run_server_pool",
    "__version__",
]
