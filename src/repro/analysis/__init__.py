"""Program analysis: recursion structure, head/tail partition, transfer
functions, and conflict detection (paper §2 and §3.1).

The main entry point is :func:`~repro.analysis.conflicts.analyze_function`,
which produces a :class:`~repro.analysis.conflicts.FunctionAnalysis`
bundling everything the transformer needs: the function's self-calls and
their classification, the head/tail partition with |H|/|T| measures,
per-parameter transfer functions, and the conflict list with distances.
"""

from repro.analysis.recursion import (
    CallClassification,
    RecursionInfo,
    analyze_recursion,
    value_contexts,
)
from repro.analysis.headtail import HeadTail, partition_head_tail, static_cost
from repro.analysis.variables import VariableInfo, parameter_transfers
from repro.analysis.conflicts import (
    Conflict,
    FunctionAnalysis,
    MemoryRef,
    analyze_function,
    collect_memory_refs,
)
from repro.analysis.callgraph import CallGraph, build_call_graph
from repro.analysis.dynamic import (
    DynamicReport,
    cross_check,
    instrument_function,
    measure_dynamic_conflicts,
)
from repro.analysis.report import FeedbackReport, explain

__all__ = [
    "CallClassification",
    "CallGraph",
    "Conflict",
    "DynamicReport",
    "FeedbackReport",
    "FunctionAnalysis",
    "HeadTail",
    "MemoryRef",
    "RecursionInfo",
    "VariableInfo",
    "analyze_function",
    "analyze_recursion",
    "build_call_graph",
    "collect_memory_refs",
    "cross_check",
    "instrument_function",
    "measure_dynamic_conflicts",
    "explain",
    "parameter_transfers",
    "partition_head_tail",
    "static_cost",
    "value_contexts",
]
