"""Head/tail partition and the |H|, |T| measures (paper §3.1).

Definition: a statement is in the **tail** T_f iff it is not a recursive
call and is dominated by a recursive call; everything else (including
every recursive call) is the **head** H_f.  The head is "all statements
that might execute before a recursive call".

|H| and |T| are "some measure of the execution time spent in each set"
(the paper defers to Sarkar & Hennessy); here they are static instruction
counts under a per-node-kind cost table, the same unit the simulated
machine charges, so the analytic concurrency (|H|+|T|)/|H| and measured
machine concurrency are directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.ir import nodes as N
from repro.ir.cfg import CFG, ENTRY, EXIT, build_cfg
from repro.ir.dominators import compute_dominators


#: Static cost of evaluating one IR node, mirroring the interpreter's
#: Tick charges (one unit per dispatch; memory touches charged where the
#: interpreter charges them).
DEFAULT_NODE_COSTS: dict[type, int] = {
    N.Const: 0,
    N.Quote: 0,
    N.Var: 1,
    N.FunctionRef: 1,
    N.FieldAccess: 0,  # plus 1 per field, see static_cost
    N.Setf: 1,
    N.If: 1,
    N.Progn: 0,
    N.Let: 1,
    N.While: 1,
    N.And: 1,
    N.Or: 1,
    N.Call: 2,
    N.Lambda: 1,
    N.Spawn: 1,
    N.FutureExpr: 1,
}


def static_cost(node: N.Node, costs: Optional[dict[type, int]] = None) -> int:
    """Cost of evaluating this single node (not its subtree)."""
    table = costs if costs is not None else DEFAULT_NODE_COSTS
    base = table.get(type(node), 1)
    if isinstance(node, N.FieldAccess):
        base += len(node.fields)
    if isinstance(node, N.Setf) and isinstance(node.place, N.FieldPlace):
        base += len(node.place.fields)
    return base


@dataclass
class HeadTail:
    """The partition plus its measures."""

    func: N.FuncDef
    cfg: CFG
    head_ids: set[int] = field(default_factory=set)
    tail_ids: set[int] = field(default_factory=set)
    h_size: int = 0
    t_size: int = 0

    @property
    def concurrency(self) -> float:
        """(|H|+|T|)/|H| — the CRI model's potential concurrency (§3.1)."""
        if self.h_size <= 0:
            return float(self.h_size + self.t_size) if self.t_size else 1.0
        return (self.h_size + self.t_size) / self.h_size

    def in_tail(self, node: N.Node) -> bool:
        return node.node_id in self.tail_ids

    def in_head(self, node: N.Node) -> bool:
        return node.node_id in self.head_ids


def partition_head_tail(
    func: N.FuncDef,
    cfg: Optional[CFG] = None,
    costs: Optional[dict[type, int]] = None,
) -> HeadTail:
    """Partition ``func``'s CFG vertices into head and tail."""
    if cfg is None:
        cfg = build_cfg(func)
    dom = compute_dominators(cfg)
    call_ids = {
        n.node_id
        for n in cfg.nodes.values()
        if isinstance(n, N.Call) and n.is_self_call
    }
    # Spawn wrappers of self-calls count as the call vertex too.
    spawn_ids = {
        n.node_id
        for n in cfg.nodes.values()
        if isinstance(n, N.Spawn) and n.call.is_self_call
    }
    recursive_vertices = call_ids | spawn_ids

    result = HeadTail(func, cfg)
    for vid, node in cfg.nodes.items():
        if vid in recursive_vertices:
            result.head_ids.add(vid)
            continue
        doms = dom.get(vid)
        if doms is not None and (doms & recursive_vertices) - {vid}:
            result.tail_ids.add(vid)
        else:
            result.head_ids.add(vid)

    for vid in result.head_ids:
        result.h_size += static_cost(cfg.nodes[vid], costs)
    for vid in result.tail_ids:
        result.t_size += static_cost(cfg.nodes[vid], costs)
    return result
