"""§6 feedback: why Curare did or didn't transform a function.

The paper describes an iterative tuning loop: run Curare, look at the
locks it inserted, the unresolved conflicts behind them, and — most
useful — the declarations that would remove them.  ``explain`` renders
a :class:`FunctionAnalysis` into exactly that report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.conflicts import FunctionAnalysis


@dataclass
class FeedbackReport:
    function: str
    transformable: bool
    concurrency: float
    lock_bound: object
    lines: list[str] = field(default_factory=list)
    suggestions: list[str] = field(default_factory=list)

    def render(self) -> str:
        out = [f";; Curare report for {self.function}"]
        out.extend(f";;   {line}" for line in self.lines)
        if self.suggestions:
            out.append(";; declarations that would help:")
            out.extend(f";;   {s}" for s in self.suggestions)
        return "\n".join(out)


def explain(analysis: FunctionAnalysis) -> FeedbackReport:
    fname = analysis.func.name.name
    ht = analysis.headtail
    report = FeedbackReport(
        function=fname,
        transformable=analysis.transformable,
        concurrency=analysis.max_concurrency(),
        lock_bound=analysis.min_distance(),
    )
    lines = report.lines

    if not analysis.recursion.is_recursive:
        lines.append("not recursive: nothing to restructure")
        return report

    calls = analysis.recursion.self_calls
    lines.append(
        f"{len(calls)} self-call site(s); "
        f"|H|={ht.h_size} |T|={ht.t_size} → potential concurrency "
        f"{ht.concurrency:.2f}"
    )
    for call in calls:
        cls = analysis.recursion.classification(call).value
        lines.append(f"  call site {call.callsite_index}: {cls}")
    if analysis.recursion.has_strict_call:
        lines.append(
            "a self-call's result is inspected: invocations cannot overlap "
            "(consider recursion→iteration or destination-passing, §5)"
        )

    active = analysis.active_conflicts()
    dismissed = analysis.dismissed_conflicts()
    if active:
        lines.append(f"{len(active)} unresolved conflict(s) force synchronization:")
        for c in active:
            lines.append(f"  {c.describe()}")
    else:
        lines.append("no unresolved conflicts")
    for c in dismissed:
        lines.append(f"dismissed: {c.describe()}")

    for reason in analysis.unknowns:
        lines.append(f"unknown: {reason}")

    # Suggestions.
    for reason in analysis.unknowns:
        if "needs (declaim (sapp" in reason:
            start = reason.index("(declaim")
            report.suggestions.append(reason[start:])
        if "declare it pure" in reason:
            name = reason.split()[4]
            report.suggestions.append(f"(declaim (pure {name}))")
    user_call_ops = {
        ref.op
        for c in active
        for ref in (c.earlier, c.later)
        if ref.user_call and ref.op
    }
    for op in sorted(user_call_ops):
        report.suggestions.append(f"(declaim (pure {op}))")
    alias_conflicts = [c for c in active if c.kind == "alias"]
    if alias_conflicts:
        report.suggestions.append(f"(declaim (no-alias {fname}))")
    var_conflicts = [c for c in active if c.kind == "variable"]
    for c in var_conflicts:
        if c.earlier.op not in ("", "setq"):
            report.suggestions.append(f"(declaim (reorderable {c.earlier.op}))")
    report.suggestions = list(dict.fromkeys(report.suggestions))
    return report
