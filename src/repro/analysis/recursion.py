"""Recursion-structure analysis (paper §3.1).

For a function f with self-calls C1..Cn:

* a call is **free** if f does not use its result;
* f is **tail-recursive** if every self-call's value is returned
  unchanged (and nothing executes after it on its path);
* a call is **stored** if its value flows only into a constructor or a
  heap store — the non-strict case where a Multilisp future suffices;
* otherwise the call is **strict**: f inspects the value, which
  precludes concurrent execution until transformed (§5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.ir import nodes as N

# Functions that merely *store* their arguments without inspecting them.
# A self-call result flowing only into these positions can be a future.
_CONSTRUCTORS = frozenset({"cons", "list"})


class ValueContext(Enum):
    """How the value of an expression node is consumed."""

    RETURNED = "returned"  # becomes (part of) f's return value
    DISCARDED = "discarded"  # evaluated for effect only
    USED = "used"  # inspected by an operator or test
    STORED = "stored"  # stored without inspection (cons/list/setf value)


def value_contexts(func: N.FuncDef) -> dict[int, ValueContext]:
    """Map node_id → consumption context for every node in ``func``."""
    out: dict[int, ValueContext] = {}

    def visit(node: N.Node, ctx: ValueContext) -> None:
        out[node.node_id] = ctx
        if isinstance(node, (N.Const, N.Quote, N.Var, N.FunctionRef)):
            return
        if isinstance(node, N.FieldAccess):
            visit(node.base, ValueContext.USED)
            return
        if isinstance(node, N.Setf):
            if isinstance(node.place, N.FieldPlace):
                visit(node.place.base, ValueContext.USED)
                visit(node.value, ValueContext.STORED)
            else:
                # A variable assignment: whether this is a "store" in the
                # future-able sense depends on later reads; be
                # conservative and call it USED.
                visit(node.value, ValueContext.USED)
            return
        if isinstance(node, N.If):
            visit(node.test, ValueContext.USED)
            visit(node.then, ctx)
            if node.els is not None:
                visit(node.els, ctx)
            return
        if isinstance(node, N.Progn):
            for sub in node.body[:-1]:
                visit(sub, ValueContext.DISCARDED)
            if node.body:
                visit(node.body[-1], ctx)
            return
        if isinstance(node, N.Let):
            for _name, init in node.bindings:
                visit(init, ValueContext.USED)
            for sub in node.body[:-1]:
                visit(sub, ValueContext.DISCARDED)
            if node.body:
                visit(node.body[-1], ctx)
            return
        if isinstance(node, N.While):
            visit(node.test, ValueContext.USED)
            for sub in node.body:
                visit(sub, ValueContext.DISCARDED)
            return
        if isinstance(node, (N.And, N.Or)):
            for sub in node.args[:-1]:
                visit(sub, ValueContext.USED)
            if node.args:
                visit(node.args[-1], ctx)
            return
        if isinstance(node, N.Call):
            arg_ctx = (
                ValueContext.STORED
                if node.fn.name in _CONSTRUCTORS
                else ValueContext.USED
            )
            for arg in node.args:
                visit(arg, arg_ctx)
            return
        if isinstance(node, N.Lambda):
            for sub in node.body[:-1]:
                visit(sub, ValueContext.DISCARDED)
            if node.body:
                visit(node.body[-1], ValueContext.RETURNED)
            return
        if isinstance(node, N.Spawn):
            for arg in node.call.args:
                visit(arg, ValueContext.USED)
            out[node.call.node_id] = ValueContext.DISCARDED
            return
        if isinstance(node, N.FutureExpr):
            visit(node.expr, ValueContext.STORED)
            return
        raise TypeError(f"value_contexts: unknown node {node!r}")

    for sub in func.body[:-1]:
        visit(sub, ValueContext.DISCARDED)
    if func.body:
        visit(func.body[-1], ValueContext.RETURNED)
    return out


class CallClassification(Enum):
    FREE = "free"  # result unused — spawnable as-is
    TAIL = "tail"  # result returned unchanged — tail call
    STORED = "stored"  # result stored, not inspected — future-able
    STRICT = "strict"  # result inspected — blocks concurrency


@dataclass
class RecursionInfo:
    """Everything about f's self-recursion."""

    func: N.FuncDef
    self_calls: list[N.Call] = field(default_factory=list)
    classifications: dict[int, CallClassification] = field(default_factory=dict)
    is_recursive: bool = False
    is_tail_recursive: bool = False
    has_strict_call: bool = False

    def classification(self, call: N.Call) -> CallClassification:
        return self.classifications[call.node_id]

    def call_sites(self) -> int:
        return len(self.self_calls)


def analyze_recursion(func: N.FuncDef) -> RecursionInfo:
    """Classify every self-call of ``func``."""
    info = RecursionInfo(func)
    contexts = value_contexts(func)
    info.self_calls = func.self_calls()
    info.is_recursive = bool(info.self_calls)
    for call in info.self_calls:
        ctx = contexts[call.node_id]
        if ctx is ValueContext.DISCARDED:
            cls = CallClassification.FREE
        elif ctx is ValueContext.RETURNED:
            cls = CallClassification.TAIL
        elif ctx is ValueContext.STORED:
            cls = CallClassification.STORED
        else:
            cls = CallClassification.STRICT
        info.classifications[call.node_id] = cls
    if info.self_calls:
        info.is_tail_recursive = all(
            c is CallClassification.TAIL for c in info.classifications.values()
        )
        info.has_strict_call = any(
            c is CallClassification.STRICT for c in info.classifications.values()
        )
    return info
