"""Conflict detection between recursive invocations (paper §2).

``analyze_function`` runs the whole §2 pipeline on one function:

1. recursion structure and call classification (§3.1),
2. head/tail partition with |H|/|T| (§3.1),
3. per-parameter transfer functions (§2.1),
4. collection of memory references — heap accessor words anchored at
   parameters, plus free-variable references,
5. the pairwise conflict computation ``A1 ⊙_d A2`` with minimum
   distances, in both orders (earlier-write and later-write),
6. declaration-based dismissal (§3.2.3: reorderable operations,
   unordered-collection writes) and aliasing checks (§6).

Everything the analyzer cannot resolve becomes an *unknown* with a
reason string; unknowns make the function conservatively untransformable
(locks on everything would be required), and the reasons feed the §6
feedback loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.analysis.headtail import HeadTail, partition_head_tail
from repro.analysis.recursion import RecursionInfo, analyze_recursion
from repro.analysis.variables import VariableInfo, parameter_transfers
from repro.declare.registry import DeclarationRegistry
from repro.ir import nodes as N
from repro.ir.cfg import build_cfg
from repro.lisp.interpreter import Interpreter
from repro.lisp.values import Builtin
from repro.paths.accessor import Accessor
from repro.paths.transfer import (
    TransferFunction,
    conflict_distances,
    conflict_distances_swept,
    conflicts_at_distance_memo,
    min_conflict_distance_memo,
)
from repro.perf.cache import LRUCache, perf_enabled
from repro.sexpr.datum import Symbol

#: Cap for the enumerated distances in reports (the min distance itself
#: comes from the exact BFS and is not capped).
DISTANCE_ENUM_CAP = 8

# A pair verdict depends only on the two refs' (accessor, is_write,
# unbounded) triples and the transfer regex; reference-dense corpora
# repeat those shapes heavily across functions, so the four underlying
# direction queries collapse to one lookup.
_PAIR_CACHE = LRUCache("analysis.pair", maxsize=65536)


@dataclass
class MemoryRef:
    """One static memory reference.

    Heap refs have ``param``/``accessor``; free-variable refs have
    ``var``.  ``unbounded`` marks refs that may touch an arbitrary
    suffix of the structure (a list-traversing builtin, an unanalyzed
    callee).  ``op`` is the operation name used by reorder declarations.
    """

    node: N.Node
    is_write: bool
    param: Optional[Symbol] = None
    accessor: Optional[Accessor] = None
    var: Optional[Symbol] = None
    unbounded: bool = False
    op: str = ""
    reorderable_update: bool = False
    user_call: bool = False  # ref induced by a call to an unanalyzed function
    # Array element references (FORTRAN-style constant-offset subscripts,
    # analysis/arrays.py): param holds the array, the index is
    # index_var + index_offset (or unknown).
    is_array: bool = False
    index_var: Optional[Symbol] = None
    index_offset: int = 0
    unknown_index: bool = False

    @property
    def is_heap(self) -> bool:
        return self.param is not None and not self.is_array

    def describe(self) -> str:
        rw = "write" if self.is_write else "read"
        if self.is_array:
            if self.unknown_index:
                return f"{rw} {self.param}[?]"
            off = (
                f"+{self.index_offset}" if self.index_offset > 0
                else (str(self.index_offset) if self.index_offset else "")
            )
            return f"{rw} {self.param}[{self.index_var}{off}]"
        if self.is_heap:
            star = "·Σ*" if self.unbounded else ""
            return f"{rw} {self.param}.{self.accessor}{star}"
        return f"{rw} variable {self.var}"


@dataclass
class Conflict:
    """A data-dependency between invocations.

    ``earlier``/``later`` are the refs as ordered by invocation index
    (the earlier invocation executes ``earlier``); ``kind`` follows the
    paper's taxonomy (§1.3) plus 'alias' for cross-parameter worst-case
    aliasing and 'variable' for free-variable conflicts.  ``distance``
    is the minimum invocation distance; ``distances`` enumerates up to
    DISTANCE_ENUM_CAP.  ``dismissed_by`` names the declaration that
    removed the constraint (§3.2.3), if any.
    """

    earlier: MemoryRef
    later: MemoryRef
    kind: str
    distance: Optional[int]
    distances: list[int] = field(default_factory=list)
    dismissed_by: Optional[str] = None

    @property
    def active(self) -> bool:
        return self.dismissed_by is None

    def describe(self) -> str:
        state = f" [dismissed: {self.dismissed_by}]" if self.dismissed_by else ""
        return (
            f"{self.kind}: {self.earlier.describe()} ⊙ {self.later.describe()}"
            f" at distance {self.distance}{state}"
        )


@dataclass
class FunctionAnalysis:
    func: N.FuncDef
    recursion: RecursionInfo
    headtail: HeadTail
    variables: VariableInfo
    heap_refs: list[MemoryRef] = field(default_factory=list)
    var_refs: list[MemoryRef] = field(default_factory=list)
    conflicts: list[Conflict] = field(default_factory=list)
    unknowns: list[str] = field(default_factory=list)
    sapp_assumed: list[Symbol] = field(default_factory=list)
    #: Per-parameter numeric induction steps (analysis/arrays.py) — used
    #: by the locking transform to emit array element locks.
    array_steps: dict = field(default_factory=dict)
    #: Names declared (pure f) — consumed by the spawn-hoisting pass.
    pure_functions: frozenset = frozenset()
    #: The interpreter's function table (builtin lookups during hoisting).
    _interp_functions: Optional[dict] = None

    # -- summary -----------------------------------------------------------

    def active_conflicts(self) -> list[Conflict]:
        return [c for c in self.conflicts if c.active]

    def dismissed_conflicts(self) -> list[Conflict]:
        return [c for c in self.conflicts if not c.active]

    @property
    def conflict_free(self) -> bool:
        return not self.active_conflicts() and not self.unknowns

    def min_distance(self) -> Optional[int]:
        """min(d_i) over active conflicts — the lock-concurrency bound
        (§3.2.1).  None when conflict-free (unbounded)."""
        distances = [c.distance for c in self.active_conflicts() if c.distance is not None]
        if self.unknowns:
            return 1  # worst case
        if not distances:
            return None
        return min(distances)

    def max_concurrency(self) -> float:
        """c_f = min((|H|+|T|)/|H|, min conflict distance) (§4.1)."""
        c = self.headtail.concurrency
        d = self.min_distance()
        if d is not None:
            c = min(c, float(d))
        return c

    def tail_conflicts(self) -> list[Conflict]:
        """Active conflicts with a reference in the function's tail.

        For these, the paper's correctness criterion — serial execution
        in *invocation* order (§3.1.1) — differs from the original
        depth-first unwind order: the untransformed recursion executes
        tail statements deepest-first.  Curare enforces the paper's
        invocation-serial semantics and reports the discrepancy.
        """
        out = []
        for c in self.active_conflicts():
            for ref in (c.earlier, c.later):
                node_ids = {n.node_id for n in ref.node.walk()}
                if node_ids & self.headtail.tail_ids:
                    out.append(c)
                    break
        return out

    @property
    def transformable(self) -> bool:
        """Can CRI concurrency be extracted at all?

        Strict self-calls block it (§5's transforms may fix that);
        unknowns force full locking but still allow the transform, so
        only strictness and non-recursion disqualify here.
        """
        return self.recursion.is_recursive and not self.recursion.has_strict_call


class _RefCollector:
    """Walks a function body collecting memory references."""

    def __init__(
        self,
        interp: Interpreter,
        func: N.FuncDef,
        variables: VariableInfo,
        decls: DeclarationRegistry,
    ):
        self.interp = interp
        self.func = func
        self.variables = variables
        self.decls = decls
        self.heap_refs: list[MemoryRef] = []
        self.var_refs: list[MemoryRef] = []
        self.unknowns: list[str] = []
        # Let-bound names whose init is a fresh allocation: direct-field
        # refs through them touch storage unique to this invocation (the
        # §5 DPS-cell provenance) and carry no conflict.  Only |word|=1
        # refs qualify — deeper paths may reach escaped shared structure.
        self.fresh_locals: set[Symbol] = set()

    def collect(self) -> None:
        bound = frozenset(self.func.params)
        for node in self.func.body:
            self._walk(node, bound)

    # -- helpers -----------------------------------------------------------

    def _resolve_base(self, node: N.Node) -> Optional[tuple[Symbol, Accessor]]:
        """Resolve a FieldAccess base to (parameter, accessor prefix)."""
        if isinstance(node, N.Var):
            return self.variables.resolve(node.name)
        if isinstance(node, N.FieldAccess):
            inner = self._resolve_base(node.base)
            if inner is None:
                return None
            return (inner[0], inner[1].compose(Accessor(node.fields)))
        return None

    def _note_unknown(self, reason: str) -> None:
        if reason not in self.unknowns:
            self.unknowns.append(reason)

    # -- walk ---------------------------------------------------------------

    def _walk(self, node: N.Node, bound: frozenset[Symbol]) -> None:
        if isinstance(node, (N.Const, N.Quote, N.FunctionRef)):
            return
        if isinstance(node, N.Var):
            # A name not lexically bound here is a free (global) variable:
            # every invocation touches the same binding.  (It may *also*
            # resolve as a derived accessor for transfer purposes, but the
            # shared-binding conflict is real regardless.)
            if node.name not in bound:
                self.var_refs.append(MemoryRef(node, is_write=False, var=node.name))
            return
        if isinstance(node, N.FieldAccess):
            self._walk(node.base, bound)
            if (
                isinstance(node.base, N.Var)
                and node.base.name in self.fresh_locals
                and len(node.fields) == 1
            ):
                return  # provenance-fresh cell: unique per invocation
            resolved = self._resolve_base(node.base)
            if resolved is not None:
                param, prefix = resolved
                self.heap_refs.append(
                    MemoryRef(
                        node,
                        is_write=False,
                        param=param,
                        accessor=prefix.compose(Accessor(node.fields)),
                        op=node.accessor_names[-1],
                    )
                )
            elif not _base_is_fresh(node.base):
                self._note_unknown(
                    f"access {node!r} has a base the analyzer cannot resolve"
                )
            return
        if isinstance(node, N.Setf):
            self._walk(node.value, bound)
            if isinstance(node.place, N.FieldPlace):
                self._walk(node.place.base, bound)
                if (
                    isinstance(node.place.base, N.Var)
                    and node.place.base.name in self.fresh_locals
                    and len(node.place.fields) == 1
                ):
                    return  # provenance-fresh cell: unique per invocation
                resolved = self._resolve_base(node.place.base)
                if resolved is not None:
                    param, prefix = resolved
                    self.heap_refs.append(
                        MemoryRef(
                            node,
                            is_write=True,
                            param=param,
                            accessor=prefix.compose(Accessor(node.place.fields)),
                            op="setf",
                        )
                    )
                elif not _base_is_fresh(node.place.base):
                    self._note_unknown(
                        f"store {node!r} has a base the analyzer cannot resolve"
                    )
            else:
                name = node.place.name
                if name not in bound:
                    self.var_refs.append(
                        MemoryRef(
                            node,
                            is_write=True,
                            var=name,
                            op=_update_op(node),
                            reorderable_update=self._is_reorderable_update(node),
                        )
                    )
            return
        if isinstance(node, N.Let):
            inner = bound
            for name, init in node.bindings:
                self._walk(init, bound if not node.sequential else inner)
                if _base_is_fresh(init):
                    self.fresh_locals.add(name)
                inner = inner | {name}
            for sub in node.body:
                self._walk(sub, inner)
            return
        if isinstance(node, N.Lambda):
            inner = bound | set(node.params)
            for sub in node.body:
                self._walk(sub, inner)
            return
        if isinstance(node, N.Call):
            for arg in node.args:
                self._walk(arg, bound)
            self._call_refs(node, bound)
            return
        if isinstance(node, N.Spawn):
            for arg in node.call.args:
                self._walk(arg, bound)
            self._call_refs(node.call, bound)
            return
        if isinstance(node, N.FutureExpr):
            self._walk(node.expr, bound)
            return
        for child in node.children():
            self._walk(child, bound)

    def _call_refs(self, node: N.Call, bound: frozenset[Symbol]) -> None:
        name = node.fn.name
        if node.is_self_call:
            return  # the recursion itself, not a memory reference
        # rplaca/rplacd are writes through their first argument.
        if name in ("rplaca", "rplacd") and node.args:
            resolved = self._resolve_base(node.args[0])
            fld = "car" if name == "rplaca" else "cdr"
            if resolved is not None:
                param, prefix = resolved
                self.heap_refs.append(
                    MemoryRef(
                        node,
                        is_write=True,
                        param=param,
                        accessor=prefix.compose(Accessor((fld,))),
                        op=name,
                    )
                )
            elif not _base_is_fresh(node.args[0]):
                self._note_unknown(f"{name} through unresolvable base")
            return
        if name in ("aref", "aset"):
            # Parameter arrays go through the constant-offset dependence
            # test (analysis/arrays.py); anything else is opaque.
            base = node.args[0] if node.args else None
            if isinstance(base, N.Var) and base.name in set(self.func.params):
                return
            self._note_unknown(
                f"{name} on a non-parameter array is not analyzable"
            )
            return
        fn = self.interp.functions.get(node.fn)
        if isinstance(fn, Builtin):
            if name in ("puthash",):
                # Unordered-collection write: target is the table (arg 1).
                self.heap_refs.append(
                    MemoryRef(node, is_write=True, unbounded=True, op=name)
                )
                return
            if fn.writes_memory:
                self._note_unknown(f"call to writing builtin {name}")
                return
            if fn.reads_memory:
                for arg in node.args:
                    resolved = self._resolve_base(arg)
                    if resolved is not None:
                        param, prefix = resolved
                        self.heap_refs.append(
                            MemoryRef(
                                node,
                                is_write=False,
                                param=param,
                                accessor=prefix,
                                unbounded=True,
                                op=name,
                            )
                        )
            return
        # A user function.  Pure declarations keep it transparent.
        if self.decls.is_pure(name):
            return
        touched = False
        for arg in node.args:
            resolved = self._resolve_base(arg)
            if resolved is not None:
                param, prefix = resolved
                touched = True
                self.heap_refs.append(
                    MemoryRef(node, is_write=True, param=param, accessor=prefix,
                              unbounded=True, op=name, user_call=True)
                )
                self.heap_refs.append(
                    MemoryRef(node, is_write=False, param=param, accessor=prefix,
                              unbounded=True, op=name, user_call=True)
                )
        if not touched:
            self._note_unknown(
                f"call to unanalyzed function {name} (declare it pure to dismiss)"
            )

    def _is_reorderable_update(self, setf: N.Setf) -> bool:
        """(setq a (op a E)) with op declared reorderable (§3.2.3).

        E may be any write-free expression (its heap reads are analyzed
        as ordinary refs elsewhere); the declaration asserts that the
        op's commutativity+associativity makes the *accumulation order*
        irrelevant.  Exactly one self-read keeps the shape a fold.
        """
        if not isinstance(setf.place, N.VarPlace):
            return False
        value = setf.value
        if not isinstance(value, N.Call) or not self.decls.is_reorderable(value.fn.name):
            return False
        var = setf.place.name
        self_reads = sum(
            1
            for sub in value.walk()
            if isinstance(sub, N.Var) and sub.name is var
        )
        has_writes = any(
            isinstance(sub, N.Setf)
            or (isinstance(sub, N.Call) and sub.fn.name in ("rplaca", "rplacd", "puthash"))
            for sub in value.walk()
        )
        return self_reads == 1 and not has_writes


def _update_op(setf: N.Setf) -> str:
    if isinstance(setf.value, N.Call):
        return setf.value.fn.name
    return "setq"


def _base_is_fresh(node: N.Node) -> bool:
    """True when the base expression denotes freshly allocated storage
    (cons/list/make-*), which cannot conflict across invocations."""
    if isinstance(node, N.Call):
        return node.fn.name in ("cons", "list") or node.fn.name.startswith("make-")
    return False


def collect_memory_refs(
    interp: Interpreter,
    func: N.FuncDef,
    variables: Optional[VariableInfo] = None,
    decls: Optional[DeclarationRegistry] = None,
) -> tuple[list[MemoryRef], list[MemoryRef], list[str]]:
    """(heap_refs, var_refs, unknown reasons) for ``func``."""
    if variables is None:
        variables = parameter_transfers(func)
    if decls is None:
        decls = DeclarationRegistry()
    collector = _RefCollector(interp, func, variables, decls)
    collector.collect()
    return collector.heap_refs, collector.var_refs, collector.unknowns


def _enum_distances_memo(a1, a2, tau, direction):
    if perf_enabled():
        # One swept BFS answers every distance in [1, cap]; proven
        # equivalent to the per-d enumeration by
        # tests/test_paths_dfa.py.
        return conflict_distances_swept(
            a1, a2, tau, DISTANCE_ENUM_CAP, direction=direction
        )
    return [
        d
        for d in range(1, DISTANCE_ENUM_CAP + 1)
        if conflicts_at_distance_memo(a1, a2, tau, d, direction=direction)
    ]


def _pair_conflicts_memo(
    a: MemoryRef,
    b: MemoryRef,
    tau: Optional[TransferFunction],
    canonicalizer=None,
) -> Optional[tuple[Optional[int], list[int]]]:
    """Memoized :func:`_pair_conflicts` for the identity-canonicalizer
    case (the non-identity variant's key would need the declared inverse
    pairs; it is rare and stays uncached).  Distances are stored as a
    tuple and re-listed per caller so the cached value is never aliased
    into a mutable :class:`Conflict`."""
    if canonicalizer is not None and not canonicalizer.is_identity():
        return _pair_conflicts(a, b, tau, canonicalizer)
    key = (
        a.accessor.fields if a.accessor is not None else None,
        a.is_write,
        a.unbounded,
        b.accessor.fields if b.accessor is not None else None,
        b.is_write,
        b.unbounded,
        tau.regex if tau is not None else None,
    )

    def compute() -> Optional[tuple[Optional[int], tuple[int, ...]]]:
        result = _pair_conflicts(a, b, tau)
        if result is None:
            return None
        return (result[0], tuple(result[1]))

    frozen = _PAIR_CACHE.get_or_compute(key, compute)
    if frozen is None:
        return None
    return (frozen[0], list(frozen[1]))


def _pair_conflicts(
    a: MemoryRef,
    b: MemoryRef,
    tau: Optional[TransferFunction],
    canonicalizer=None,
) -> Optional[tuple[Optional[int], list[int]]]:
    """Min distance and enumerated distances for refs on the *same*
    parameter, considering both invocation orders.  Returns None when
    provably conflict-free.

    When a non-identity ``canonicalizer`` applies (declared inverse
    fields, §2.1), distinct raw words can name the same location, so the
    canonical-path variant of the distance test is used.
    """
    if not (a.is_write or b.is_write):
        return None
    if a.unbounded or b.unbounded or tau is None:
        # Conservative: may touch overlapping structure at any distance.
        return (1, list(range(1, DISTANCE_ENUM_CAP + 1)))
    if canonicalizer is not None and not canonicalizer.is_identity():
        return _pair_conflicts_canonical(a, b, tau, canonicalizer)
    best: Optional[int] = None
    dists: set[int] = set()
    # Order 1: `a` in the earlier invocation.
    if a.is_write:
        d = min_conflict_distance_memo(a.accessor, b.accessor, tau, direction="write-first")
        if d is not None:
            best = d if best is None else min(best, d)
        dists.update(
            _enum_distances_memo(a.accessor, b.accessor, tau, "write-first")
        )
    if b.is_write:
        d = min_conflict_distance_memo(a.accessor, b.accessor, tau, direction="write-second")
        if d is not None:
            best = d if best is None else min(best, d)
        dists.update(
            _enum_distances_memo(a.accessor, b.accessor, tau, "write-second")
        )
    # Order 2: `b` in the earlier invocation (symmetric).
    if b.is_write:
        d = min_conflict_distance_memo(b.accessor, a.accessor, tau, direction="write-first")
        if d is not None:
            best = d if best is None else min(best, d)
        dists.update(
            _enum_distances_memo(b.accessor, a.accessor, tau, "write-first")
        )
    if a.is_write:
        d = min_conflict_distance_memo(b.accessor, a.accessor, tau, direction="write-second")
        if d is not None:
            best = d if best is None else min(best, d)
        dists.update(
            _enum_distances_memo(b.accessor, a.accessor, tau, "write-second")
        )
    if best is None and not dists:
        return None
    return (best, sorted(dists))


def _pair_conflicts_canonical(
    a: MemoryRef,
    b: MemoryRef,
    tau: TransferFunction,
    canonicalizer,
) -> Optional[tuple[Optional[int], list[int]]]:
    """Canonical-path distance test for declared-inverse-field structures."""
    from repro.paths.transfer import min_conflict_distance_canonical

    best: Optional[int] = None
    try:
        for x, y, direction in (
            (a, b, "write-first"),
            (a, b, "write-second"),
            (b, a, "write-first"),
            (b, a, "write-second"),
        ):
            writer = x if direction == "write-first" else y
            if not writer.is_write:
                continue
            d = min_conflict_distance_canonical(
                x.accessor, y.accessor, tau, canonicalizer, direction=direction
            )
            if d is not None:
                best = d if best is None else min(best, d)
    except ValueError:
        # τ is not a finite word set: conservative.
        return (1, list(range(1, DISTANCE_ENUM_CAP + 1)))
    if best is None:
        return None
    return (best, [best])


def _kind(a: MemoryRef, b: MemoryRef) -> str:
    if a.is_write and b.is_write:
        return "output"
    if a.is_write:
        return "flow"
    return "anti"


def analyze_function(
    interp: Interpreter,
    func_or_name: Any,
    decls: Optional[DeclarationRegistry] = None,
    assume_sapp: bool = False,
    fresh_params: Optional[set[str]] = None,
) -> FunctionAnalysis:
    """Run the full §2 analysis on one function.

    ``assume_sapp=True`` treats every parameter as SAPP-declared — a
    convenience for experiments; the faithful default requires explicit
    ``(declaim (sapp f param))`` declarations, recording assumption gaps
    in ``analysis.unknowns``.

    ``fresh_params`` names parameters whose actual arguments are known —
    by transformation provenance, not analysis — to be freshly allocated
    per invocation (the DPS destination, §5): references through them
    never conflict across invocations and carry no SAPP obligation.
    """
    from repro.ir.lower import lower_function

    if isinstance(func_or_name, N.FuncDef):
        func = func_or_name
    else:
        name = func_or_name if isinstance(func_or_name, Symbol) else interp.intern(str(func_or_name))
        func = lower_function(interp, name)
    if decls is None:
        decls = DeclarationRegistry()
    fresh = fresh_params if fresh_params is not None else set()

    recursion = analyze_recursion(func)
    headtail = partition_head_tail(func, build_cfg(func))
    variables = parameter_transfers(func, recursion)
    # Provenance-fresh parameters: discard the (unknowable) transfer and
    # its unknown-reason; every ref through them is conflict-free below.
    for param in func.params:
        if param.name in fresh:
            variables.unknown_reasons.pop(param, None)
    heap_refs, var_refs, unknowns = collect_memory_refs(interp, func, variables, decls)

    analysis = FunctionAnalysis(
        func=func,
        recursion=recursion,
        headtail=headtail,
        variables=variables,
        heap_refs=heap_refs,
        var_refs=var_refs,
        unknowns=list(unknowns),
        pure_functions=frozenset(decls._pure),
        _interp_functions=interp.functions,
    )

    fname = func.name.name
    # SAPP obligations: every parameter with heap refs needs the property.
    for param in func.params:
        if any(r.param is param for r in heap_refs):
            if decls.has_sapp(fname, param.name) or param.name in fresh:
                continue
            if assume_sapp:
                analysis.sapp_assumed.append(param)
            else:
                analysis.unknowns.append(
                    f"parameter {param} needs (declaim (sapp {fname} {param}))"
                )

    # Heap conflicts: same-parameter pairs via transfer functions;
    # cross-parameter pairs via aliasing declarations.  Declared inverse
    # fields switch the distance test to its canonical-path variant.
    canonicalizer = decls.canonicalizer()
    n = len(heap_refs)
    for i in range(n):
        for j in range(i, n):
            a, b = heap_refs[i], heap_refs[j]
            if not (a.is_write or b.is_write):
                continue
            if a.param is None or b.param is None:
                # puthash-style unbounded table writes: only conflict with
                # refs of the same op (the table is function-local state
                # otherwise invisible to accessor analysis).
                if a.op == b.op and decls.is_unordered_write(a.op):
                    conflict = Conflict(a, b, "output", 1, [1],
                                        dismissed_by=f"(unordered-writes {a.op})")
                    analysis.conflicts.append(conflict)
                elif a.op == b.op:
                    analysis.conflicts.append(Conflict(a, b, "output", 1, [1]))
                continue
            if a.param.name in fresh or b.param.name in fresh:
                # Fresh-destination provenance (§5): unique locations.
                continue
            if a.param is not b.param:
                if decls.no_alias(fname, a.param.name, b.param.name):
                    continue
                analysis.conflicts.append(
                    Conflict(
                        a, b, "alias", 1, [1],
                        dismissed_by=None,
                    )
                )
                continue
            if i == j and not a.is_write:
                continue
            tau = variables.transfer(a.param)
            result = _pair_conflicts_memo(a, b, tau, canonicalizer)
            if result is None:
                continue
            distance, distances = result
            conflict = Conflict(a, b, _kind(a, b), distance, distances)
            if (
                decls.is_unordered_write(a.op)
                and decls.is_unordered_write(b.op)
                and a.is_write
                and b.is_write
            ):
                conflict.dismissed_by = f"(unordered-writes {a.op})"
            analysis.conflicts.append(conflict)

    # Array conflicts: FORTRAN-style constant-offset dependence testing
    # (paper §2: "the techniques developed for FORTRAN can be applied to
    # Lisp arrays also").
    from repro.analysis.arrays import (
        array_conflicts,
        collect_array_refs,
        numeric_steps,
    )

    steps = numeric_steps(func)
    analysis.array_steps = steps
    array_refs = collect_array_refs(func, set(func.params))
    memrefs: dict[int, MemoryRef] = {}

    def as_memref(aref) -> MemoryRef:
        existing = memrefs.get(id(aref))
        if existing is None:
            existing = MemoryRef(
                aref.node,
                is_write=aref.is_write,
                param=aref.array,
                op="aset" if aref.is_write else "aref",
                is_array=True,
                index_var=aref.index_var,
                index_offset=aref.offset,
                unknown_index=aref.unknown_index,
            )
            memrefs[id(aref)] = existing
        return existing

    for ac in array_conflicts(array_refs, steps):
        analysis.conflicts.append(
            Conflict(
                as_memref(ac.earlier),
                as_memref(ac.later),
                ac.kind,
                ac.distance if ac.distance is not None else 1,
                [ac.distance] if ac.distance is not None else
                list(range(1, DISTANCE_ENUM_CAP + 1)),
            )
        )
    # Cross-parameter array aliasing: two array params may be the same
    # vector unless declared otherwise.
    arrays_used = {r.array for r in array_refs}
    writes_by_array = {r.array for r in array_refs if r.is_write}
    for a in sorted(arrays_used, key=lambda s: s.name):
        for b in sorted(arrays_used, key=lambda s: s.name):
            if a.name >= b.name:
                continue
            if a not in writes_by_array and b not in writes_by_array:
                continue
            if decls.no_alias(fname, a.name, b.name):
                continue
            ra = next(r for r in array_refs if r.array is a)
            rb = next(r for r in array_refs if r.array is b)
            analysis.conflicts.append(
                Conflict(as_memref(ra), as_memref(rb), "alias", 1, [1])
            )

    # Variable conflicts: every invocation touches the same binding.
    by_var: dict[Symbol, list[MemoryRef]] = {}
    for ref in var_refs:
        by_var.setdefault(ref.var, []).append(ref)
    for var, refs in by_var.items():
        writes = [r for r in refs if r.is_write]
        if not writes:
            continue
        all_reorderable = all(r.reorderable_update for r in writes) and all(
            r.is_write or _read_inside_update(r, writes) for r in refs
        )
        for i, a in enumerate(refs):
            for b in refs[i:]:
                if not (a.is_write or b.is_write):
                    continue
                conflict = Conflict(a, b, "variable", 1, [1])
                if all_reorderable:
                    # Reads inside the updates are part of the atomic
                    # read-modify-write; the whole group reorders freely.
                    op = next(w.op for w in writes)
                    conflict.dismissed_by = f"(reorderable {op})"
                analysis.conflicts.append(conflict)

    return analysis


def _read_inside_update(read: MemoryRef, writes: list[MemoryRef]) -> bool:
    """Is this var-read the self-read inside one of the reorderable
    updates (the ``a`` in ``(setq a (+ a 1))``)?"""
    for w in writes:
        if not isinstance(w.node, N.Setf):
            continue
        for sub in w.node.value.walk():
            if sub is read.node:
                return True
    return False
