"""Dynamic conflict measurement: the empirical oracle for §2.

The static analysis *predicts* which invocations conflict and at what
distance.  This module *measures* it: run the original function
sequentially with invocation-boundary instrumentation, attribute every
memory event to its invocation, and extract the actual conflicting
pairs and their invocation distances from the trace.

Two uses:

* validation — ``cross_check`` asserts the static answer is sound
  (every observed conflict distance is ≥ the static minimum, and the
  static minimum is observed when the workload exercises it);
* measurement — the paper promises exactly this kind of tooling around
  the SAPP ("we are measuring how often this occurs in Lisp programs");
  ``measure_dynamic_conflicts`` is the conflict-side counterpart.

Instrumentation: a copy of the function is defined whose body is
bracketed by ``curare-invocation-begin``/``-end`` annotations; a replay
of the trace maintains the bracket stack, so tail events (which execute
during the *unwind*, interleaved with deeper invocations in time) are
attributed to the correct invocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.ir import nodes as N
from repro.ir.lower import lower_function
from repro.ir.unparse import unparse_function
from repro.ir.visitors import copy_function, rewrite
from repro.lisp.effects import Annotate
from repro.lisp.interpreter import Interpreter
from repro.lisp.runner import SequentialRunner
from repro.lisp.values import Builtin
from repro.sexpr.datum import DEFAULT_SYMBOLS, Symbol, intern


def _install_markers(interp: Interpreter) -> None:
    if interp.intern("curare-invocation-begin") in interp.functions:
        return

    def begin(interp_: Any):
        yield Annotate("invocation-begin")
        return None

    def end(interp_: Any):
        yield Annotate("invocation-end")
        return None

    interp.define_builtin(
        Builtin("curare-invocation-begin", begin, is_generator=True, cost=0)
    )
    interp.define_builtin(
        Builtin("curare-invocation-end", end, is_generator=True, cost=0)
    )


def instrument_function(interp: Interpreter, name: str, suffix: str = "-dyn") -> str:
    """Define an instrumented copy of ``name`` with bracketed invocations.

    Returns the instrumented name.  The copy is semantically identical
    (the markers are zero-cost annotations).
    """
    _install_markers(interp)
    func = copy_function(lower_function(interp, intern(name)))
    new_name = intern(name + suffix)

    def retarget(node: N.Node):
        if isinstance(node, N.Call) and node.is_self_call:
            node.fn = new_name
        return None

    func.body = [rewrite(n, retarget) for n in func.body]
    result_var = DEFAULT_SYMBOLS.gensym("dynresult")
    body_value = (
        func.body[0] if len(func.body) == 1 else N.Progn(list(func.body))
    )
    func.body = [
        N.Call(intern("curare-invocation-begin"), []),
        N.Let(
            [(result_var, body_value)],
            [
                N.Call(intern("curare-invocation-end"), []),
                N.Var(result_var),
            ],
        ),
    ]
    func.name = new_name
    SequentialRunner(interp).eval_form(unparse_function(func))
    return new_name.name


@dataclass
class DynamicConflict:
    loc: tuple
    kind: str  # flow | anti | output
    distance: int


@dataclass
class DynamicReport:
    invocations: int = 0
    conflicts: list[DynamicConflict] = field(default_factory=list)
    #: distance → count over all conflicting pairs
    distance_histogram: dict[int, int] = field(default_factory=dict)

    def min_distance(self) -> Optional[int]:
        if not self.distance_histogram:
            return None
        return min(self.distance_histogram)

    def observed_distances(self) -> set[int]:
        return set(self.distance_histogram)


def measure_dynamic_conflicts(
    interp: Interpreter,
    name: str,
    call_text: str,
    runner: Optional[SequentialRunner] = None,
) -> DynamicReport:
    """Run ``call_text`` (which must drive ``<name>-dyn``) and mine the
    trace for cross-invocation conflicts.

    The caller instruments first (``instrument_function``) and evaluates
    any setup itself; this function owns only the traced run and the
    replay.
    """
    if runner is None:
        runner = SequentialRunner(interp)
    start = len(runner.trace.events)
    runner.eval_text(call_text)
    events = runner.trace.events[start:]

    report = DynamicReport()
    # Replay: bracket stack of invocation indices.
    stack: list[int] = []
    next_index = 0
    touches: dict[tuple, list[tuple[int, str]]] = {}  # loc → [(invocation, kind)]
    for event in events:
        if event.kind == "annotate" and isinstance(event.detail, tuple):
            tag = event.detail[0]
            if tag == "invocation-begin":
                stack.append(next_index)
                next_index += 1
                continue
            if tag == "invocation-end":
                if stack:
                    stack.pop()
                continue
        if event.kind in ("read", "write") and stack:
            touches.setdefault(event.loc, []).append((stack[-1], event.kind))
    report.invocations = next_index

    for loc, uses in touches.items():
        seen_pairs: set[tuple[int, str, int, str]] = set()
        for i, (inv_a, kind_a) in enumerate(uses):
            for inv_b, kind_b in uses[i + 1:]:
                if inv_a == inv_b:
                    continue
                if kind_a == "read" and kind_b == "read":
                    continue
                key = (inv_a, kind_a, inv_b, kind_b)
                if key in seen_pairs:
                    continue
                seen_pairs.add(key)
                distance = abs(inv_b - inv_a)
                if kind_a == "write" and kind_b == "write":
                    kind = "output"
                elif (kind_a == "write") == (inv_a < inv_b):
                    kind = "flow"
                else:
                    kind = "anti"
                report.conflicts.append(DynamicConflict(loc, kind, distance))
                report.distance_histogram[distance] = (
                    report.distance_histogram.get(distance, 0) + 1
                )
    return report


@dataclass
class CrossCheck:
    ok: bool
    notes: list[str] = field(default_factory=list)


def cross_check(static_analysis, dynamic: DynamicReport) -> CrossCheck:
    """Static soundness against a dynamic observation.

    * If the dynamic run observed conflicts, the static analysis must
      not claim conflict-freedom, and its minimum distance must be ≤
      every observed distance (a sound under-approximation of the
      closest conflict).
    * A conflict-free static verdict must see a conflict-free trace.
    """
    check = CrossCheck(ok=True)
    static_min = static_analysis.min_distance()
    dynamic_min = dynamic.min_distance()
    if dynamic_min is not None:
        if static_analysis.conflict_free:
            check.ok = False
            check.notes.append(
                f"UNSOUND: static says conflict-free, dynamic observed a "
                f"conflict at distance {dynamic_min}"
            )
        elif static_min is not None and static_min > dynamic_min:
            check.ok = False
            check.notes.append(
                f"UNSOUND: static minimum {static_min} exceeds observed "
                f"distance {dynamic_min}"
            )
        else:
            check.notes.append(
                f"static min {static_min} ≤ observed min {dynamic_min} "
                f"over {dynamic.invocations} invocations"
            )
    else:
        if static_analysis.conflict_free:
            check.notes.append("both static and dynamic see no conflicts")
        else:
            check.notes.append(
                "static reports conflicts the workload did not exercise "
                "(conservative, not unsound)"
            )
    return check
