"""Call graph over the functions defined in an interpreter (§4.1's
"program generally contains many recursive functions, some of which
invoke each other")."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.ir import nodes as N
from repro.ir.lower import lower_function
from repro.lisp.interpreter import Interpreter
from repro.lisp.values import Closure
from repro.sexpr.datum import Symbol


@dataclass
class CallGraph:
    """callers/callees among user-defined functions."""

    callees: dict[Symbol, set[Symbol]] = field(default_factory=dict)
    callers: dict[Symbol, set[Symbol]] = field(default_factory=dict)
    functions: dict[Symbol, N.FuncDef] = field(default_factory=dict)

    def add_edge(self, caller: Symbol, callee: Symbol) -> None:
        self.callees.setdefault(caller, set()).add(callee)
        self.callers.setdefault(callee, set()).add(caller)

    def directly_recursive(self) -> set[Symbol]:
        return {f for f, cs in self.callees.items() if f in cs}

    def strongly_connected_components(self) -> list[set[Symbol]]:
        """Tarjan SCCs — mutual-recursion groups."""
        index: dict[Symbol, int] = {}
        low: dict[Symbol, int] = {}
        on_stack: set[Symbol] = set()
        stack: list[Symbol] = []
        out: list[set[Symbol]] = []
        counter = [0]

        def strongconnect(v: Symbol) -> None:
            index[v] = low[v] = counter[0]
            counter[0] += 1
            stack.append(v)
            on_stack.add(v)
            for w in self.callees.get(v, ()):
                if w not in self.functions:
                    continue
                if w not in index:
                    strongconnect(w)
                    low[v] = min(low[v], low[w])
                elif w in on_stack:
                    low[v] = min(low[v], index[w])
            if low[v] == index[v]:
                comp: set[Symbol] = set()
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.add(w)
                    if w is v:
                        break
                out.append(comp)

        for v in self.functions:
            if v not in index:
                strongconnect(v)
        return out

    def mutually_recursive_groups(self) -> list[set[Symbol]]:
        """SCCs of size > 1, or size 1 with a self-loop."""
        return [
            c
            for c in self.strongly_connected_components()
            if len(c) > 1 or next(iter(c)) in self.callees.get(next(iter(c)), set())
        ]


def build_call_graph(
    interp: Interpreter, names: Optional[Iterable[Symbol]] = None
) -> CallGraph:
    """Lower every named (default: all user-defined) function and record
    its static call edges."""
    graph = CallGraph()
    if names is None:
        names = [
            name
            for name, fn in interp.functions.items()
            if isinstance(fn, Closure) and name in interp.source_forms
        ]
    for name in names:
        func = lower_function(interp, name)
        graph.functions[name] = func
        for node in func.walk():
            if isinstance(node, N.Call):
                graph.add_edge(name, node.fn)
    return graph
