"""Array dependence analysis (paper §2, second paragraph).

"The FORTRAN-restructuring literature contains an extensive discussion
of the techniques for detecting conflicts among accesses to arrays ...
The techniques developed for FORTRAN can be applied to Lisp arrays
also."

This module is that application, for the subscript class those
techniques handle exactly: *constant-offset* subscripts ``i + c`` of an
induction parameter ``i`` that steps by a constant per invocation
(``(f v (+ i s))``).  A write ``a[i+c1]`` in one invocation and an
access ``a[i+c2]`` in an invocation d later touch the same element iff

    c1 = d·s + c2      ⇒      d = (c1 − c2) / s

— a one-equation Banerjee/GCD test.  Subscripts outside the class
(``a[a[i]]``, the double indirection the paper calls out as what
"most FORTRAN transformation systems will not work on") degrade to an
unknown-index reference that conflicts at every distance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.ir import nodes as N
from repro.sexpr.datum import Symbol


@dataclass
class NumericStep:
    """Induction info for a parameter: new = old + step each invocation."""

    step: int


@dataclass
class ArrayRef:
    """One static array element reference.

    ``array`` is the (parameter) variable holding the vector; the index
    is ``index_var + offset`` when resolvable, else ``unknown_index``.
    """

    node: N.Node
    array: Symbol
    is_write: bool
    index_var: Optional[Symbol] = None
    offset: int = 0
    unknown_index: bool = False

    def describe(self) -> str:
        rw = "write" if self.is_write else "read"
        if self.unknown_index:
            return f"{rw} {self.array}[?]"
        sign = f"+{self.offset}" if self.offset >= 0 else str(self.offset)
        return f"{rw} {self.array}[{self.index_var}{sign if self.offset else ''}]"


def resolve_index(expr: N.Node) -> Optional[tuple[Symbol, int]]:
    """Match ``i``, ``(+ i c)``, ``(+ c i)``, ``(- i c)``, ``(1+ i)``,
    ``(1- i)`` — the constant-offset subscript class."""
    if isinstance(expr, N.Var):
        return (expr.name, 0)
    if isinstance(expr, N.Call):
        name = expr.fn.name
        args = expr.args
        if name == "1+" and len(args) == 1 and isinstance(args[0], N.Var):
            return (args[0].name, 1)
        if name == "1-" and len(args) == 1 and isinstance(args[0], N.Var):
            return (args[0].name, -1)
        if name in ("+", "-") and len(args) == 2:
            a, b = args
            if isinstance(a, N.Var) and isinstance(b, N.Const) and isinstance(b.value, int):
                return (a.name, b.value if name == "+" else -b.value)
            if (
                name == "+"
                and isinstance(b, N.Var)
                and isinstance(a, N.Const)
                and isinstance(a.value, int)
            ):
                return (b.name, a.value)
    return None


def numeric_steps(func: N.FuncDef) -> dict[Symbol, Optional[NumericStep]]:
    """Per-parameter numeric induction step, merged over self-call sites.

    None means the parameter is not a constant-step induction variable
    (different steps at different sites also yield None — the
    flow-insensitive merge, as with accessor transfers).
    """
    out: dict[Symbol, Optional[NumericStep]] = {}
    calls = func.self_calls()
    if not calls:
        return {p: None for p in func.params}
    for position, param in enumerate(func.params):
        steps: set[int] = set()
        ok = True
        for call in calls:
            if position >= len(call.args):
                ok = False
                break
            resolved = resolve_index(call.args[position])
            if resolved is None or resolved[0] is not param:
                ok = False
                break
            steps.add(resolved[1])
        if ok and len(steps) == 1:
            out[param] = NumericStep(steps.pop())
        else:
            out[param] = None
    return out


def collect_array_refs(func: N.FuncDef, params: set[Symbol]) -> list[ArrayRef]:
    """All aref/aset references whose array is a parameter."""
    refs: list[ArrayRef] = []
    for node in func.walk():
        if not isinstance(node, N.Call):
            continue
        if node.fn.name == "aref" and len(node.args) == 2:
            is_write = False
        elif node.fn.name == "aset" and len(node.args) == 3:
            is_write = True
        else:
            continue
        base = node.args[0]
        if not (isinstance(base, N.Var) and base.name in params):
            continue  # non-parameter arrays handled by the general layer
        resolved = resolve_index(node.args[1])
        if resolved is None:
            refs.append(
                ArrayRef(node, base.name, is_write, unknown_index=True)
            )
        else:
            refs.append(
                ArrayRef(node, base.name, is_write,
                         index_var=resolved[0], offset=resolved[1])
            )
    return refs


@dataclass
class ArrayConflict:
    earlier: ArrayRef
    later: ArrayRef
    kind: str  # flow | anti | output
    distance: Optional[int]  # None = every distance (unknown index/step)

    def describe(self) -> str:
        d = self.distance if self.distance is not None else "any"
        return (
            f"array {self.kind}: {self.earlier.describe()} ⊙ "
            f"{self.later.describe()} at distance {d}"
        )


def _kind(a: ArrayRef, b: ArrayRef) -> str:
    if a.is_write and b.is_write:
        return "output"
    return "flow" if a.is_write else "anti"


def array_conflicts(
    refs: list[ArrayRef],
    steps: dict[Symbol, Optional[NumericStep]],
) -> list[ArrayConflict]:
    """Pairwise constant-offset dependence test.

    For refs a (earlier invocation) and b (d invocations later) on the
    same array with subscripts i+c_a and i+c_b and induction step s:
    the same element is touched iff c_a = d·s + c_b.
    """
    out: list[ArrayConflict] = []
    n = len(refs)
    for x in range(n):
        for y in range(n):
            a, b = refs[x], refs[y]
            if x >= y and a is b and not a.is_write:
                continue
            if x > y:
                continue  # ordered pairs once; both directions below
            if a.array is not b.array:
                continue  # cross-array aliasing is the no-alias layer's job
            if not (a.is_write or b.is_write):
                continue
            if a.unknown_index or b.unknown_index:
                out.append(ArrayConflict(a, b, _kind(a, b), None))
                continue
            if a.index_var is not b.index_var:
                out.append(ArrayConflict(a, b, _kind(a, b), None))
                continue
            step_info = steps.get(a.index_var)
            if step_info is None or step_info.step == 0:
                # Not an induction variable (or a constant index): same
                # element every invocation → distance 1 conflict, unless
                # offsets literally differ on a zero step.
                if step_info is not None and a.offset != b.offset:
                    continue
                out.append(ArrayConflict(a, b, _kind(a, b),
                                         1 if step_info is not None else None))
                continue
            s = step_info.step
            best: Optional[int] = None
            # Direction 1: a in the earlier invocation.
            delta = a.offset - b.offset
            if delta % s == 0 and delta // s >= 1:
                best = delta // s
            # Direction 2: b in the earlier invocation.
            delta2 = b.offset - a.offset
            if delta2 % s == 0 and delta2 // s >= 1:
                d2 = delta2 // s
                best = d2 if best is None else min(best, d2)
            if best is not None:
                out.append(ArrayConflict(a, b, _kind(a, b), best))
    return out
