"""Variable analysis: transfer functions for recursive parameters (§2.1).

For a parameter v of a recursive function f, each self-call supplies an
actual argument; when that argument is an accessor chain over v itself
(the overwhelmingly common shape — ``(f (cdr l))``), the one-invocation
step transfer is that accessor word.  Multiple call sites merge
flow-insensitively into a disjunction, so the step transfer is
``a1|a2|...|am`` and the paper's any-distance transfer is its Kleene
plus (τ_I = cdr⁺ for Figure 3).

When an argument is anything else — another parameter, a computed value,
a call — the transfer is *unknown* and the analysis must assume the
worst (§1.3: "the most conservative assumptions about any relationship
it cannot deduce").  Unknown is represented by ``None``.

Local ``let`` bindings to accessor chains of parameters are resolved so
that ``(let ((x (cdr l))) (car x))`` is seen as the access ``cdr.car``
on ``l`` (a *derived accessor*); rebinding a variable to two different
shapes degrades it to unknown, keeping the analysis flow-insensitive as
in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.recursion import RecursionInfo
from repro.ir import nodes as N
from repro.paths.accessor import Accessor
from repro.paths.regex import Alt, Regex, word_regex
from repro.paths.transfer import TransferFunction
from repro.sexpr.datum import Symbol


@dataclass
class VariableInfo:
    """Per-parameter results.

    ``step``: the one-invocation transfer (regex), or None when unknown.
    ``tau``:  TransferFunction wrapping ``step`` (None when unknown).
    ``derived``: map of local variables to (parameter, accessor) pairs —
    variables that always hold an accessor-chain of a parameter.
    """

    params: list[Symbol]
    step: dict[Symbol, Optional[Regex]] = field(default_factory=dict)
    tau: dict[Symbol, Optional[TransferFunction]] = field(default_factory=dict)
    derived: dict[Symbol, tuple[Symbol, Accessor]] = field(default_factory=dict)
    unknown_reasons: dict[Symbol, str] = field(default_factory=dict)

    def transfer(self, param: Symbol) -> Optional[TransferFunction]:
        return self.tau.get(param)

    def resolve(self, var: Symbol) -> Optional[tuple[Symbol, Accessor]]:
        """Resolve ``var`` to (parameter, accessor-prefix).

        A parameter resolves to itself with the empty accessor.
        """
        if var in self.derived:
            return self.derived[var]
        if var in self.params:
            return (var, Accessor(()))
        return None


def _accessor_of(node: N.Node) -> Optional[tuple[Symbol, Accessor]]:
    """If ``node`` is Var(v) or FieldAccess(Var(v), fields), return
    (v, word); else None."""
    if isinstance(node, N.Var):
        return (node.name, Accessor(()))
    if isinstance(node, N.FieldAccess) and isinstance(node.base, N.Var):
        return (node.base.name, Accessor(node.fields))
    return None


def _collect_derived(func: N.FuncDef, params: set[Symbol]) -> dict[Symbol, tuple[Symbol, Accessor]]:
    """Flow-insensitive resolution of let/setq-bound accessor aliases."""
    candidates: dict[Symbol, set[tuple[Symbol, tuple[str, ...]]]] = {}

    def note(name: Symbol, init: N.Node) -> None:
        acc = _accessor_of(init)
        entry = candidates.setdefault(name, set())
        if acc is None:
            entry.add((name, ("⊤",)))  # poison: non-accessor binding
        else:
            entry.add((acc[0], acc[1].fields))

    for node in func.walk():
        if isinstance(node, N.Let):
            for name, init in node.bindings:
                note(name, init)
        elif isinstance(node, N.Setf) and isinstance(node.place, N.VarPlace):
            if node.place.name not in params:
                note(node.place.name, node.value)

    # Resolve chains: x -> (l, cdr), y -> (x, car) becomes y -> (l, cdr.car).
    resolved: dict[Symbol, tuple[Symbol, Accessor]] = {}
    changed = True
    iterations = 0
    while changed and iterations < len(candidates) + 2:
        changed = False
        iterations += 1
        for name, entries in candidates.items():
            if name in resolved or len(entries) != 1:
                continue
            (base, fields) = next(iter(entries))
            if "⊤" in fields:
                continue
            if base in params:
                resolved[name] = (base, Accessor(fields))
                changed = True
            elif base in resolved:
                parent, prefix = resolved[base]
                resolved[name] = (parent, prefix.compose(Accessor(fields)))
                changed = True
    return resolved


def parameter_transfers(
    func: N.FuncDef, recursion: Optional[RecursionInfo] = None
) -> VariableInfo:
    """Compute the step transfer function of every parameter of ``func``."""
    if recursion is None:
        from repro.analysis.recursion import analyze_recursion

        recursion = analyze_recursion(func)
    params = list(func.params)
    param_set = set(params)
    info = VariableInfo(params)
    info.derived = _collect_derived(func, param_set)

    for index, param in enumerate(params):
        words: list[Regex] = []
        unknown: Optional[str] = None
        assigned = _param_assigned(func, param)
        if assigned:
            unknown = f"parameter {param} is assigned within the body"
        for call in recursion.self_calls:
            if unknown:
                break
            if index >= len(call.args):
                unknown = f"self-call passes too few arguments for {param}"
                break
            arg = call.args[index]
            acc = _accessor_of(arg)
            if acc is None and isinstance(arg, N.Var):
                acc = info.resolve(arg.name)
            elif acc is not None and acc[0] not in param_set:
                resolved = info.resolve(acc[0])
                if resolved is not None:
                    acc = (resolved[0], resolved[1].compose(acc[1]))
                else:
                    acc = None
            if acc is None or acc[0] is not param:
                # Constant arguments (e.g. a threaded accumulator seed or
                # an unchanged environment value) are handled in the
                # conflict layer; here any non-self accessor is unknown.
                unknown = (
                    f"argument for {param} at a self-call is not an "
                    f"accessor chain over {param}"
                )
                break
            words.append(word_regex(acc[1].fields))
        if unknown or not recursion.self_calls:
            info.step[param] = None
            info.tau[param] = None
            info.unknown_reasons[param] = unknown or "function is not recursive"
            continue
        step: Regex = words[0]
        for w in words[1:]:
            if w != step:
                step = Alt(step, w)
        info.step[param] = step
        info.tau[param] = TransferFunction(step)
    return info


def _param_assigned(func: N.FuncDef, param: Symbol) -> bool:
    for node in func.walk():
        if (
            isinstance(node, N.Setf)
            and isinstance(node.place, N.VarPlace)
            and node.place.name is param
        ):
            return True
    return False
