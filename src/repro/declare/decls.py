"""Declaration kinds.

Each class mirrors one bullet of the paper's §6 list:

* ``PointerFieldsDecl``  — "whether a structure field points to other
  structures";
* ``SappDecl``           — constraint on data structures: an argument
  satisfies the single-access-path property;
* ``NoAliasDecl``        — the type/aliasing of actual arguments;
* ``InverseFieldsDecl``  — "the canonicalization function for a
  structure";
* ``ParallelizeDecl``    — "whether to restructure a function";
* ``ReorderableDecl``    — "whether an operation has characteristics
  necessary for reordering" (atomic + commutative + associative, §3.2.3
  category 1);
* ``UnorderedWritesDecl``— §3.2.3 category 2: inserts into unordered
  collections;
* ``AnyResultDecl``      — §3.2.3 category 3: searches that may return
  any acceptable result;
* ``PureDecl``           — a callee has no side effects (lets the
  analyzer keep a function analyzable despite calls out).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


class DeclarationError(Exception):
    pass


class Declaration:
    """Base class; concrete declarations are frozen dataclasses."""

    __slots__ = ()


@dataclass(frozen=True)
class PointerFieldsDecl(Declaration):
    """Fields of ``struct_name`` that point to instances of the same
    structure; all other fields are data (paper §2.1's f1..fr split)."""

    struct_name: str
    fields: tuple[str, ...]


@dataclass(frozen=True)
class SappDecl(Declaration):
    """Argument ``param`` of ``function`` has the single-access-path
    property (the structure it roots is a tree under canonicalization)."""

    function: str
    param: str


@dataclass(frozen=True)
class NoAliasDecl(Declaration):
    """Parameters of ``function`` never reference overlapping structure.

    With ``params=None`` the declaration covers every parameter pair.
    """

    function: str
    params: Optional[tuple[str, str]] = None


@dataclass(frozen=True)
class InverseFieldsDecl(Declaration):
    """``first`` and ``second`` are inverse pointers (succ/pred); adjacent
    pairs cancel during path canonicalization."""

    struct_name: str
    first: str
    second: str


@dataclass(frozen=True)
class ParallelizeDecl(Declaration):
    """Restructure ``function`` (enable=False forbids it)."""

    function: str
    enable: bool = True


@dataclass(frozen=True)
class ReorderableDecl(Declaration):
    """``operation`` is atomic, commutative, and associative — conflicts
    among its applications to the same location impose no ordering
    (Figure 8's (setq a (+ a 1)) / (setq a (+ a 2)))."""

    operation: str


@dataclass(frozen=True)
class AssociativeDecl(Declaration):
    """``operation`` is associative (enables Huet-Lang accumulator
    introduction, §5 — weaker than full reorderability)."""

    operation: str


@dataclass(frozen=True)
class UnorderedWritesDecl(Declaration):
    """``operation`` inserts into an unordered collection; insert order
    is unobservable, so write/write conflicts through it are ignorable."""

    operation: str


@dataclass(frozen=True)
class AnyResultDecl(Declaration):
    """Calls to ``function`` may return any result satisfying the search
    criterion; result-order constraints are unnecessary."""

    function: str


@dataclass(frozen=True)
class PureDecl(Declaration):
    """``function`` neither reads nor writes heap state observable by
    callers (beyond its arguments' values)."""

    function: str
