"""The declaration registry: what the analyses query.

All queries default to the conservative answer (may alias, not SAPP,
not reorderable, impure), so an empty registry reproduces the paper's
"pessimistic assumptions ... produce correct programs — only slow ones".
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.declare.decls import (
    AnyResultDecl,
    AssociativeDecl,
    Declaration,
    DeclarationError,
    InverseFieldsDecl,
    NoAliasDecl,
    ParallelizeDecl,
    PointerFieldsDecl,
    PureDecl,
    ReorderableDecl,
    SappDecl,
    UnorderedWritesDecl,
)
from repro.paths.canonical import Canonicalizer, InversePair


class DeclarationRegistry:
    def __init__(self, declarations: Iterable[Declaration] = ()):
        self._decls: list[Declaration] = []
        self._pointer_fields: dict[str, tuple[str, ...]] = {}
        self._sapp: set[tuple[str, str]] = set()
        self._noalias_all: set[str] = set()
        self._noalias_pairs: set[tuple[str, str, str]] = set()
        self._inverse: dict[str, list[InversePair]] = {}
        self._parallelize: dict[str, bool] = {}
        self._reorderable: set[str] = set()
        self._associative: set[str] = set()
        self._unordered: set[str] = set()
        self._any_result: set[str] = set()
        self._pure: set[str] = set()
        for d in declarations:
            self.add(d)

    def add(self, decl: Declaration) -> None:
        self._decls.append(decl)
        if isinstance(decl, PointerFieldsDecl):
            self._pointer_fields[decl.struct_name] = decl.fields
        elif isinstance(decl, SappDecl):
            self._sapp.add((decl.function, decl.param))
        elif isinstance(decl, NoAliasDecl):
            if decl.params is None:
                self._noalias_all.add(decl.function)
            else:
                a, b = decl.params
                self._noalias_pairs.add((decl.function, a, b))
                self._noalias_pairs.add((decl.function, b, a))
        elif isinstance(decl, InverseFieldsDecl):
            self._inverse.setdefault(decl.struct_name, []).append(
                InversePair(decl.first, decl.second)
            )
        elif isinstance(decl, ParallelizeDecl):
            self._parallelize[decl.function] = decl.enable
        elif isinstance(decl, ReorderableDecl):
            self._reorderable.add(decl.operation)
            self._associative.add(decl.operation)  # reorderable ⊃ associative
        elif isinstance(decl, AssociativeDecl):
            self._associative.add(decl.operation)
        elif isinstance(decl, UnorderedWritesDecl):
            self._unordered.add(decl.operation)
        elif isinstance(decl, AnyResultDecl):
            self._any_result.add(decl.function)
        elif isinstance(decl, PureDecl):
            self._pure.add(decl.function)
        else:
            raise DeclarationError(f"unknown declaration {decl!r}")

    def extend(self, decls: Iterable[Declaration]) -> None:
        for d in decls:
            self.add(d)

    def __len__(self) -> int:
        return len(self._decls)

    def __iter__(self):
        return iter(self._decls)

    # -- queries (conservative defaults) ------------------------------------

    def pointer_fields(self, struct_name: str) -> Optional[tuple[str, ...]]:
        """Declared pointer fields, or None (undeclared → all fields)."""
        return self._pointer_fields.get(struct_name)

    def has_sapp(self, function: str, param: str) -> bool:
        return (function, param) in self._sapp

    def no_alias(self, function: str, a: str, b: str) -> bool:
        return (
            function in self._noalias_all
            or (function, a, b) in self._noalias_pairs
        )

    def canonicalizer(self, struct_name: str = "") -> Canonicalizer:
        """Canonicalizer from the declared inverse pairs.

        With no struct name, merges every declared pair (field names are
        unique across accessors in the analyzed subset).
        """
        if struct_name:
            return Canonicalizer(self._inverse.get(struct_name, []))
        pairs: list[InversePair] = []
        for ps in self._inverse.values():
            pairs.extend(ps)
        return Canonicalizer(pairs)

    def may_parallelize(self, function: str) -> bool:
        """Default True: restructuring is Curare's purpose; the §6
        declaration exists to *forbid* it for a function."""
        return self._parallelize.get(function, True)

    def is_reorderable(self, operation: str) -> bool:
        return operation in self._reorderable

    def is_associative(self, operation: str) -> bool:
        return operation in self._associative

    def is_unordered_write(self, operation: str) -> bool:
        return operation in self._unordered

    def is_any_result(self, function: str) -> bool:
        return function in self._any_result

    def is_pure(self, function: str) -> bool:
        return function in self._pure
