"""Programmer declarations (paper §6).

Curare "relies upon a programmer for a wide variety of information that
it cannot collect by analyzing a program".  This package defines the
declaration vocabulary, a registry the analyses query, and a reader for
``(declaim ...)`` forms embedded in program text.

Declared facts are *trusted*: a wrong declaration yields a wrong
program, exactly as in the paper.  The absence of declarations never
yields a wrong program — only a slow one (§6's closing guarantee) —
because every query defaults to the conservative answer.
"""

from repro.declare.decls import (
    AssociativeDecl,
    Declaration,
    DeclarationError,
    InverseFieldsDecl,
    NoAliasDecl,
    AnyResultDecl,
    PointerFieldsDecl,
    PureDecl,
    ReorderableDecl,
    SappDecl,
    ParallelizeDecl,
    UnorderedWritesDecl,
)
from repro.declare.registry import DeclarationRegistry
from repro.declare.parser import parse_declaim, extract_declarations

__all__ = [
    "AnyResultDecl",
    "AssociativeDecl",
    "Declaration",
    "DeclarationError",
    "DeclarationRegistry",
    "InverseFieldsDecl",
    "NoAliasDecl",
    "ParallelizeDecl",
    "PointerFieldsDecl",
    "PureDecl",
    "ReorderableDecl",
    "SappDecl",
    "UnorderedWritesDecl",
    "extract_declarations",
    "parse_declaim",
]
