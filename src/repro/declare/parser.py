"""Reading ``(declaim ...)`` forms from program text.

Syntax (one clause per declaim; several clauses may share a declaim)::

    (declaim (pointer-fields node next prev)
             (inverse-fields node succ pred)
             (sapp f l)
             (no-alias f)             ; all parameter pairs
             (no-alias f a b)         ; one pair
             (parallelize f)          ; or (parallelize f nil)
             (reorderable +)
             (unordered-writes puthash)
             (any-result find-any)
             (pure helper))
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.declare.decls import (
    AnyResultDecl,
    AssociativeDecl,
    Declaration,
    DeclarationError,
    InverseFieldsDecl,
    NoAliasDecl,
    ParallelizeDecl,
    PointerFieldsDecl,
    PureDecl,
    ReorderableDecl,
    SappDecl,
    UnorderedWritesDecl,
)
from repro.sexpr.datum import Cons, Symbol, list_to_pylist


def _names(parts: list[Any], clause: Any) -> list[str]:
    out = []
    for p in parts:
        if not isinstance(p, Symbol):
            raise DeclarationError(f"expected symbols in declaim clause: {clause!r}")
        out.append(p.name)
    return out


def parse_declaim(form: Any) -> list[Declaration]:
    """Parse one ``(declaim clause...)`` form."""
    parts = list_to_pylist(form)
    if not parts or not isinstance(parts[0], Symbol) or parts[0].name != "declaim":
        raise DeclarationError(f"not a declaim form: {form!r}")
    out: list[Declaration] = []
    for clause in parts[1:]:
        if not isinstance(clause, Cons):
            raise DeclarationError(f"malformed declaim clause: {clause!r}")
        items = list_to_pylist(clause)
        if not items or not isinstance(items[0], Symbol):
            raise DeclarationError(f"malformed declaim clause: {clause!r}")
        kind = items[0].name
        rest = items[1:]
        if kind == "pointer-fields":
            names = _names(rest, clause)
            if len(names) < 1:
                raise DeclarationError("pointer-fields needs a struct name")
            out.append(PointerFieldsDecl(names[0], tuple(names[1:])))
        elif kind == "inverse-fields":
            names = _names(rest, clause)
            if len(names) != 3:
                raise DeclarationError("inverse-fields needs struct f1 f2")
            out.append(InverseFieldsDecl(names[0], names[1], names[2]))
        elif kind == "sapp":
            names = _names(rest, clause)
            if len(names) != 2:
                raise DeclarationError("sapp needs function and parameter")
            out.append(SappDecl(names[0], names[1]))
        elif kind == "no-alias":
            names = _names(rest, clause)
            if len(names) == 1:
                out.append(NoAliasDecl(names[0]))
            elif len(names) == 3:
                out.append(NoAliasDecl(names[0], (names[1], names[2])))
            else:
                raise DeclarationError("no-alias needs f or f a b")
        elif kind == "parallelize":
            if len(rest) == 1 and isinstance(rest[0], Symbol):
                out.append(ParallelizeDecl(rest[0].name, True))
            elif len(rest) == 2 and isinstance(rest[0], Symbol):
                out.append(ParallelizeDecl(rest[0].name, rest[1] is not None))
            else:
                raise DeclarationError("parallelize needs f [bool]")
        elif kind == "reorderable":
            for name in _names(rest, clause):
                out.append(ReorderableDecl(name))
        elif kind == "associative":
            for name in _names(rest, clause):
                out.append(AssociativeDecl(name))
        elif kind == "unordered-writes":
            for name in _names(rest, clause):
                out.append(UnorderedWritesDecl(name))
        elif kind == "any-result":
            for name in _names(rest, clause):
                out.append(AnyResultDecl(name))
        elif kind == "pure":
            for name in _names(rest, clause):
                out.append(PureDecl(name))
        else:
            raise DeclarationError(f"unknown declaration kind: {kind}")
    return out


def extract_declarations(forms: Iterable[Any]) -> tuple[list[Declaration], list[Any]]:
    """Split a program into (declarations, remaining forms)."""
    decls: list[Declaration] = []
    rest: list[Any] = []
    for form in forms:
        if (
            isinstance(form, Cons)
            and isinstance(form.car, Symbol)
            and form.car.name == "declaim"
        ):
            decls.extend(parse_declaim(form))
        else:
            rest.append(form)
    return decls, rest
