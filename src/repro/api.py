"""The stable public facade over the Curare engine.

Every hosting layer — the ``repro`` CLI, the ``repro serve`` service,
notebooks, benchmarks — calls the engine through these four functions
and nothing else:

* :func:`analyze` — the §2/§3 conflict analysis and §6 feedback report;
* :func:`transform` — restructure one function (or the whole program);
* :func:`run` — evaluate an expression on the simulated multiprocessor;
* :func:`sweep` — run a parameter-sweep grid through the scale-out
  driver and result cache.

Each returns a **frozen dataclass** with a deterministic ``to_dict()``
/ ``to_json()``: identical inputs produce identical JSON except for the
``"wall"`` section (wall-clock measurements), which
:func:`strip_wall` removes.  That determinism is what makes results
cacheable, coalescable (the server computes identical in-flight
requests once), and byte-comparable between hosting layers — the
output-equivalence discipline the restructurer itself lives by.

Errors are typed: :class:`BadRequest` for caller mistakes (unknown
fault plan, unknown grid, bad options), :class:`TransformRefused` when
Curare declines a prerequisite transform, :class:`EngineError` for
failures inside the engine.  Hosting layers map ``err.code`` onto their
own vocabulary (CLI exit codes, server error responses).
"""

from __future__ import annotations

import json
import re
import time
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

__all__ = [
    "AnalysisResult",
    "ApiError",
    "BadRequest",
    "EngineError",
    "RunOptions",
    "RunResult",
    "SweepOptions",
    "SweepReport",
    "TransformOptions",
    "TransformRefused",
    "TransformResult",
    "analyze",
    "canonical_json",
    "content_digest",
    "engine_fingerprints",
    "open_cache_store",
    "open_op_cache",
    "run",
    "strip_wall",
    "sweep",
    "sweep_grids",
    "transform",
]


# ---------------------------------------------------------------------------
# errors

class ApiError(Exception):
    """Base class for facade errors; ``code`` is the stable vocabulary
    hosting layers translate (exit codes, server error responses)."""

    code = "internal"


class BadRequest(ApiError):
    """The caller asked for something that does not exist or cannot be
    expressed: unknown fault plan, unknown grid, invalid option."""

    code = "bad_request"


class TransformRefused(ApiError):
    """Curare declined a transform that a later step depended on."""

    code = "transform_refused"


class EngineError(ApiError):
    """The engine failed while executing a well-formed request
    (Lisp evaluation error, machine abort, ...)."""

    code = "engine_error"


# ---------------------------------------------------------------------------
# serialization helpers

def canonical_json(obj: Any) -> str:
    """The one canonical serialization (sorted keys, no whitespace) —
    the same convention :mod:`repro.scale.cache` hashes."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=False)


def content_digest(obj: Any) -> str:
    """SHA-256 of the canonical JSON of ``obj`` — the content-addressed
    digest the result cache and the server's single-flight table key on."""
    from repro.scale.cache import sha256_text

    return sha256_text(canonical_json(obj))


def strip_wall(body: Mapping[str, Any]) -> Dict[str, Any]:
    """A result dict minus its ``"wall"`` section — the deterministic
    part two hosting layers must agree on byte-for-byte."""
    return {k: v for k, v in body.items() if k != "wall"}


# ---------------------------------------------------------------------------
# result-cache facade (the serve/fleet layers may not import the engine
# directly; the cache server and the router open their stores here)

def open_cache_store(root: "str | Any") -> Any:
    """The on-disk entry store ``repro cache-serve`` hosts: a
    :class:`repro.scale.cache.ResultCache` (whole-entry ``get_entry`` /
    ``put_entry`` reads and writes, integrity-verified both ways)."""
    from repro.scale.cache import ResultCache

    return ResultCache(root)


def open_op_cache(server: str, local_dir: Optional[str] = None,
                  **kwargs: Any) -> Any:
    """A client for the shared cache keyed at the facade-op level —
    what serve shards and the router consult before computing.  Never
    raises from ``get``/``put``; a dead server degrades to local-only
    (or to a plain miss when ``local_dir`` is None)."""
    from repro.scale.cacheclient import OpCache

    return OpCache(server, local_root=local_dir, **kwargs)


def engine_fingerprints() -> Dict[str, str]:
    """The per-stage code fingerprints of *this* process's engine
    (:mod:`repro.scale.fingerprint`) — surfaced in ``stats`` ops so
    operators can spot mixed code versions across a fleet."""
    from repro.scale.fingerprint import stage_fingerprints

    return stage_fingerprints()


def _num(value: Any) -> Any:
    """JSON-safe number: non-finite floats become strings (strict JSON
    has no Infinity/NaN)."""
    if isinstance(value, float) and (value != value or value in
                                     (float("inf"), float("-inf"))):
        return str(value)
    if value is None or isinstance(value, (int, float)):
        return value
    return str(value)


class _Result:
    """Shared ``to_dict``/``to_json`` plumbing for the result types."""

    kind = ""

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"kind": self.kind}
        for f in fields(self):  # type: ignore[arg-type]
            if f.name == "wall_ms":
                continue
            value = getattr(self, f.name)
            if isinstance(value, tuple):
                value = _untuple(value)
            out[f.name] = value
        out["wall"] = {"ms": round(self.wall_ms, 3)}  # type: ignore[attr-defined]
        return out

    def to_json(self, indent: Optional[int] = None) -> str:
        """Deterministic JSON: keys are always sorted, so two results
        built from identical inputs serialize byte-identically (modulo
        the ``"wall"`` section)."""
        if indent is None:
            return canonical_json(self.to_dict())
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True,
                          ensure_ascii=False) + "\n"


def _untuple(value: Any) -> Any:
    if isinstance(value, tuple):
        return [_untuple(v) for v in value]
    return value


_GENSYM_RE = re.compile(r"#:([A-Za-z-]+)(\d+)\b")


def _canonical_rendering(
    report_text: str, forms: Tuple[Tuple[str, ...], ...]
) -> Tuple[str, Tuple[Tuple[str, ...], ...]]:
    """Renumber ``#:prefixN`` gensyms in first-appearance order.

    The transformer draws gensyms from a process-global counter, so
    two calls on identical input would otherwise render differently —
    breaking the facade's identical-inputs → identical-JSON contract
    (and with it CLI/serve parity and single-flight coalescing).  The
    renaming is injective (distinct originals get distinct indices), so
    uniqueness within one result is preserved.
    """
    flat = [report_text]
    for group in forms:
        flat.extend(group)
    mapping: Dict[str, str] = {}

    def rename(match: "re.Match[str]") -> str:
        original = match.group(0)
        if original not in mapping:
            mapping[original] = f"#:{match.group(1)}{len(mapping)}"
        return mapping[original]

    renamed = [_GENSYM_RE.sub(rename, text) for text in flat]
    out_forms = []
    index = 1
    for group in forms:
        out_forms.append(tuple(renamed[index:index + len(group)]))
        index += len(group)
    return renamed[0], tuple(out_forms)


# ---------------------------------------------------------------------------
# options

@dataclass(frozen=True)
class TransformOptions:
    """Knobs of the §3–§5 restructuring pipeline (the CLI flags of
    ``repro transform``, as data)."""

    mode: str = "spawn"  # "spawn" | "enqueue"
    suffix: str = "-cc"
    early_release: bool = False
    use_delay: bool = False
    prefer_dps: bool = True
    whole_program: bool = False
    assume_sapp: bool = False


@dataclass(frozen=True)
class RunOptions:
    """Simulated-machine configuration for :func:`run`."""

    processors: int = 4
    transform: Tuple[str, ...] = ()  # functions to transform first
    assume_sapp: bool = False
    free_sync: bool = False
    seed: Optional[int] = None
    faults: Optional[str] = None  # fault-plan name, seeded by ``seed``
    race_check: bool = False
    lock_wait_timeout: Optional[int] = None
    timeline: bool = False
    # "interpreter" | "compiled" | None (None = perf-layer default:
    # compiled when the perf layer is enabled).  Both evaluators emit
    # identical effect streams; the interpreter is the reference.
    eval_mode: Optional[str] = None


@dataclass(frozen=True)
class SweepOptions:
    """Scale-out sweep configuration for :func:`sweep`."""

    workers: int = 0
    job_timeout: Optional[float] = 300.0
    cache_dir: Optional[str] = None
    #: ``host:port`` of a ``repro cache-serve`` instance; workers read
    #: and write through it (write-through to ``cache_dir`` when both
    #: are set).  A dead server degrades to per-machine caching.
    cache_server: Optional[str] = None


# ---------------------------------------------------------------------------
# results

@dataclass(frozen=True)
class AnalysisResult(_Result):
    """The §6 feedback report, as data plus the rendered text."""

    kind = "analysis"

    function: str
    transformable: bool
    concurrency: Any  # analytic concurrency (may be non-finite → str)
    lock_bound: Any  # min conflict distance (None when conflict-free)
    lines: Tuple[str, ...] = ()
    suggestions: Tuple[str, ...] = ()
    text: str = ""
    wall_ms: float = 0.0


@dataclass(frozen=True)
class TransformResult(_Result):
    """One restructuring outcome: the report plus the emitted source.

    ``forms`` holds the pretty-printed emitted code: one group per
    transformed function, each group being the final ``defun`` followed
    by its wrapper forms — exactly what the CLI prints.
    """

    kind = "transform"

    function: str
    transformed: bool
    transformed_name: Optional[str]
    reason: str = ""
    report_text: str = ""
    functions: Tuple[str, ...] = ()
    forms: Tuple[Tuple[str, ...], ...] = ()
    lock_count: int = 0
    wall_ms: float = 0.0


@dataclass(frozen=True)
class RunResult(_Result):
    """One simulated-machine execution, every observable the CLI
    prints: the value, the outputs, the machine statistics, and the
    robustness-layer summaries."""

    kind = "run"

    value: str
    outputs: Tuple[str, ...] = ()
    total_time: int = 0
    processes: int = 0
    mean_concurrency: float = 0.0
    utilization: float = 0.0
    transformed: Tuple[str, ...] = ()
    seed: Optional[int] = None
    fault_plan: Optional[str] = None
    faults_injected: int = 0
    races: Optional[str] = None
    timeline: Optional[str] = None
    wall_ms: float = 0.0


@dataclass(frozen=True)
class SweepReport(_Result):
    """A whole sweep: the versioned report envelope plus accessors.

    Unlike the other results, the body here *is* the envelope document
    ``repro sweep`` writes (kind ``"sweep"``); ``to_json`` returns the
    canonical on-disk serialization of that envelope.
    """

    kind = "sweep"

    grid: str
    workers: int
    envelope: Mapping[str, Any] = field(default_factory=dict)
    wall_ms: float = 0.0

    @property
    def body(self) -> Mapping[str, Any]:
        return self.envelope["body"]

    @property
    def failed(self) -> Sequence[str]:
        return self.body["summary"]["failed"]

    @property
    def ok(self) -> bool:
        return not self.failed

    @property
    def hit_rate(self) -> float:
        return self.body["cache"]["hit_rate"]

    def format(self) -> str:
        """The human-readable sweep summary (CLI output)."""
        from repro.scale.report import format_sweep

        return format_sweep(dict(self.envelope))

    def to_dict(self) -> Dict[str, Any]:
        return dict(self.envelope)

    def to_json(self, indent: Optional[int] = None) -> str:
        if indent is None:
            return canonical_json(self.to_dict())
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True,
                          ensure_ascii=False) + "\n"


# ---------------------------------------------------------------------------
# the facade

def _load_curare(source: str, decls: Sequence[str], assume_sapp: bool,
                 recorder: Any = None):
    from repro.lisp.interpreter import Interpreter
    from repro.transform.pipeline import Curare

    program = "\n".join((*decls, source)) if decls else source
    interp = Interpreter()
    curare = Curare(interp, assume_sapp=assume_sapp, recorder=recorder)
    try:
        curare.load_program(program)
    except Exception as err:  # reader/eval/declaration errors alike
        raise EngineError(f"cannot load program: {err}") from err
    return curare


def analyze(
    source: str,
    function: str,
    *,
    decls: Sequence[str] = (),
    assume_sapp: bool = False,
    recorder: Any = None,
) -> AnalysisResult:
    """Run the §2/§3 analysis on ``function`` and explain the result.

    ``decls`` are extra ``(declaim ...)`` forms prepended to ``source``
    (the programmer's tuning loop without editing the file).
    """
    from repro.analysis.report import explain

    start = time.perf_counter()
    curare = _load_curare(source, decls, assume_sapp, recorder)
    try:
        analysis = curare.analyze(function)
    except Exception as err:  # unknown function, lowering failure, ...
        raise EngineError(f"analysis failed: {err}") from err
    feedback = explain(analysis)
    return AnalysisResult(
        function=feedback.function,
        transformable=bool(feedback.transformable),
        concurrency=_num(feedback.concurrency),
        lock_bound=_num(feedback.lock_bound),
        lines=tuple(feedback.lines),
        suggestions=tuple(feedback.suggestions),
        text=feedback.render(),
        wall_ms=(time.perf_counter() - start) * 1000.0,
    )


def transform(
    source: str,
    function: str,
    options: TransformOptions = TransformOptions(),
    *,
    decls: Sequence[str] = (),
    recorder: Any = None,
) -> TransformResult:
    """Restructure ``function`` (or, with ``options.whole_program``,
    every eligible function, retargeting callers)."""
    from repro.sexpr.printer import pretty_str

    start = time.perf_counter()
    curare = _load_curare(source, decls, options.assume_sapp, recorder)
    try:
        if options.whole_program:
            from repro.transform.program import transform_program

            program_result = transform_program(
                curare,
                suffix=options.suffix,
                mode=options.mode,
                early_release=options.early_release,
                use_delay=options.use_delay,
                prefer_dps=options.prefer_dps,
            )
            outcomes = program_result.transformed
            report_text, forms = _canonical_rendering(
                program_result.report(),
                tuple(
                    (pretty_str(o.final_form),
                     *(pretty_str(f) for f in o.extra_forms))
                    for o in outcomes.values()
                ),
            )
            return TransformResult(
                function=function,
                transformed=bool(outcomes),
                transformed_name=None,
                report_text=report_text,
                functions=tuple(
                    o.transformed_name for o in outcomes.values()
                ),
                forms=forms,
                lock_count=sum(o.lock_count for o in outcomes.values()),
                wall_ms=(time.perf_counter() - start) * 1000.0,
            )
        result = curare.transform(
            function,
            suffix=options.suffix,
            mode=options.mode,
            early_release=options.early_release,
            use_delay=options.use_delay,
            prefer_dps=options.prefer_dps,
        )
    except Exception as err:  # unknown function, lowering failure, ...
        raise EngineError(f"transform failed: {err}") from err
    forms: Tuple[Tuple[str, ...], ...] = ()
    if result.transformed:
        forms = ((pretty_str(result.final_form),
                  *(pretty_str(f) for f in result.extra_forms)),)
    report_text, forms = _canonical_rendering(result.report(), forms)
    return TransformResult(
        function=function,
        transformed=bool(result.transformed),
        transformed_name=result.transformed_name,
        reason=result.reason,
        report_text=report_text,
        functions=(result.transformed_name,) if result.transformed else (),
        forms=forms,
        lock_count=result.lock_count,
        wall_ms=(time.perf_counter() - start) * 1000.0,
    )


def run(
    source: str,
    expr: str,
    options: RunOptions = RunOptions(),
    *,
    decls: Sequence[str] = (),
    recorder: Any = None,
) -> RunResult:
    """Load ``source``, optionally transform functions, and evaluate
    ``expr`` on the simulated multiprocessor."""
    from repro.runtime.clock import FREE_SYNC, CostModel
    from repro.runtime.machine import Machine, MachineError
    from repro.sexpr.printer import write_str

    start = time.perf_counter()
    curare = _load_curare(source, decls, options.assume_sapp, recorder)
    transformed: list[str] = []
    for name in options.transform:
        try:
            outcome = curare.transform(name)
        except Exception as err:
            raise EngineError(f"transform failed: {err}") from err
        if not outcome.transformed:
            raise TransformRefused(
                f"could not transform {name}: {outcome.reason}"
            )
        transformed.append(outcome.transformed_name)
    faults = None
    if options.faults is not None:
        from repro.runtime.faults import fault_matrix

        plans = {p.name: p for p in fault_matrix(options.seed or 0)}
        if options.faults not in plans:
            raise BadRequest(
                f"unknown fault plan {options.faults!r}; "
                f"choose from: {', '.join(sorted(plans))}"
            )
        faults = plans[options.faults]
    detector = None
    if options.race_check:
        from repro.runtime.racecheck import RaceDetector

        detector = RaceDetector()
    if options.eval_mode is not None:
        from repro.perf import EVAL_MODES

        if options.eval_mode not in EVAL_MODES:
            raise BadRequest(
                f"unknown eval mode {options.eval_mode!r}; "
                f"choose from: {', '.join(EVAL_MODES)}"
            )
    machine = Machine(
        curare.interp,
        processors=options.processors,
        cost_model=FREE_SYNC if options.free_sync else CostModel(),
        policy="random" if options.seed is not None else "fifo",
        seed=options.seed,
        faults=faults,
        race_detector=detector,
        lock_wait_timeout=options.lock_wait_timeout,
        recorder=recorder,
        eval_mode=options.eval_mode,
    )
    try:
        main = machine.spawn_text(expr)
        stats = machine.run()
    except MachineError as err:
        raise EngineError(
            f"{type(err).__name__} at t={err.clock}: {err}"
        ) from err
    except Exception as err:
        raise EngineError(f"evaluation failed: {err}") from err
    timeline = None
    if options.timeline:
        from repro.harness.timeline import occupancy_sparkline, process_gantt

        timeline = (occupancy_sparkline(stats,
                                        processors=options.processors)
                    + "\n" + process_gantt(machine))
    return RunResult(
        value=write_str(main.result),
        outputs=tuple(write_str(o) for o in machine.outputs),
        total_time=stats.total_time,
        processes=stats.processes,
        mean_concurrency=stats.mean_concurrency,
        utilization=stats.utilization,
        transformed=tuple(transformed),
        seed=options.seed,
        fault_plan=faults.describe() if faults is not None else None,
        faults_injected=faults.total_injected if faults is not None else 0,
        races=detector.summary() if detector is not None else None,
        timeline=timeline,
        wall_ms=(time.perf_counter() - start) * 1000.0,
    )


def sweep(
    grid: str,
    options: SweepOptions = SweepOptions(),
    *,
    recorder: Any = None,
) -> SweepReport:
    """Run a named sweep grid through the sharded driver and the
    content-addressed result cache; returns the enveloped report."""
    from repro.scale import build_report, grid_jobs, grid_names, run_jobs

    try:
        jobs = grid_jobs(grid)
    except KeyError:
        raise BadRequest(
            f"unknown grid {grid!r}; choose from: {', '.join(grid_names())}"
        ) from None
    if options.workers < 0:
        raise BadRequest("workers must be >= 0")
    start = time.perf_counter()
    outcomes = run_jobs(
        jobs,
        workers=options.workers,
        job_timeout=options.job_timeout,
        cache_dir=options.cache_dir,
        cache_server=options.cache_server,
        recorder=recorder,
    )
    total_ms = (time.perf_counter() - start) * 1000.0
    envelope = build_report(grid, outcomes, options.workers,
                            options.cache_dir, total_ms,
                            cache_server=options.cache_server)
    return SweepReport(grid=grid, workers=options.workers,
                       envelope=envelope, wall_ms=total_ms)


def sweep_grids() -> Dict[str, int]:
    """Available sweep grids: name → point count (for listings)."""
    from repro.scale import grid_jobs, grid_names

    return {name: len(grid_jobs(name)) for name in grid_names()}
